// Fault injection for the simulated network.
//
// Supports per-latency-class message drop probabilities, pairwise host
// partitions, and whole-host outages. The runtime consults the plan at
// delivery time, so faults interact naturally with in-flight messages —
// which is how stale bindings (paper Section 4.1.4) arise in practice.
//
// Thread-safe: under ThreadRuntime/TcpRuntime the plan is read from every
// posting thread while a driver thread injects and heals faults mid-run.
// The sets are guarded by an internal shared mutex; drop probabilities are
// atomics; any_faults() — the per-message fast path — is a single relaxed
// load of a maintained count, so the fault-free configuration pays no lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>

#include "base/mutex.hpp"
#include "base/rng.hpp"
#include "base/status.hpp"
#include "base/thread_annotations.hpp"
#include "base/types.hpp"
#include "net/topology.hpp"

namespace legion::net {

// Process-level faults a runtime with real child processes can inject.
// kKill is `kill -9` (the child vanishes mid-request; in-flight calls must
// fail kUnavailable); kStop/kResume are SIGSTOP/SIGCONT (the child exists
// but makes no progress, so calls time out — the wedged-host scenario).
enum class ChildFault : std::uint8_t { kKill = 0, kStop = 1, kResume = 2 };

class FaultPlan {
 public:
  void set_drop_probability(LatencyClass c, double p) {
    base::WriterMutexLock lock(mutex_);
    auto& slot = drop_p_[static_cast<std::size_t>(c)];
    const double old = slot.load(std::memory_order_relaxed);
    slot.store(p, std::memory_order_relaxed);
    active_.fetch_add((p > 0.0 ? 1 : 0) - (old > 0.0 ? 1 : 0),
                      std::memory_order_relaxed);
  }
  [[nodiscard]] double drop_probability(LatencyClass c) const {
    return drop_p_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

  void partition(HostId a, HostId b) {
    base::WriterMutexLock lock(mutex_);
    if (partitions_.insert(key(a, b)).second) {
      active_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void heal(HostId a, HostId b) {
    base::WriterMutexLock lock(mutex_);
    if (partitions_.erase(key(a, b)) != 0) {
      active_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool partitioned(HostId a, HostId b) const {
    base::ReaderMutexLock lock(mutex_);
    return partitions_.contains(key(a, b));
  }

  void take_host_down(HostId h) {
    base::WriterMutexLock lock(mutex_);
    if (down_.insert(h.value).second) {
      active_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void bring_host_up(HostId h) {
    base::WriterMutexLock lock(mutex_);
    if (down_.erase(h.value) != 0) {
      active_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool host_down(HostId h) const {
    base::ReaderMutexLock lock(mutex_);
    return down_.contains(h.value);
  }

  // True if a message from a to b (class c) should be silently dropped.
  [[nodiscard]] bool should_drop(HostId a, HostId b, LatencyClass c,
                                 Rng& rng) const {
    {
      base::ReaderMutexLock lock(mutex_);
      if (down_.contains(a.value) || down_.contains(b.value) ||
          partitions_.contains(key(a, b))) {
        return true;
      }
    }
    const double p = drop_probability(c);
    return p > 0.0 && rng.chance(p);
  }

  // Lock-free probe: the count of active fault sources (partitions, downed
  // hosts, nonzero drop classes) is maintained under mutex_ but read
  // relaxed. The delivery path gates all fault work on this.
  [[nodiscard]] bool any_faults() const {
    return active_.load(std::memory_order_relaxed) != 0;
  }

  // --- Child-process faults -------------------------------------------
  //
  // Unlike drops/partitions (consulted passively at delivery time), child
  // faults act on real OS processes, so the plan dispatches to an injector
  // the owning runtime registers (ProcessRuntime: signal the child's pid).
  // Runtimes without child processes leave the injector unset and these
  // calls fail kUnimplemented — a test asking an in-process runtime to
  // kill -9 an object is a bug, not a no-op.

  using ChildFaultInjector =
      std::function<Status(std::uint64_t child_endpoint, ChildFault fault)>;

  void set_child_fault_injector(ChildFaultInjector injector) {
    base::WriterMutexLock lock(mutex_);
    child_injector_ = std::move(injector);
  }

  // kill -9 the worker process serving `child_endpoint`.
  Status kill_child(std::uint64_t child_endpoint) {
    return inject_child_fault(child_endpoint, ChildFault::kKill);
  }
  // SIGSTOP / SIGCONT the worker process serving `child_endpoint`.
  Status stop_child(std::uint64_t child_endpoint) {
    return inject_child_fault(child_endpoint, ChildFault::kStop);
  }
  Status resume_child(std::uint64_t child_endpoint) {
    return inject_child_fault(child_endpoint, ChildFault::kResume);
  }

 private:
  Status inject_child_fault(std::uint64_t child_endpoint, ChildFault fault) {
    ChildFaultInjector injector;
    {
      base::ReaderMutexLock lock(mutex_);
      injector = child_injector_;
    }
    // Invoked outside the lock: the injector signals processes and touches
    // the runtime's child table, which must not nest under the fault plan.
    if (!injector) {
      return UnimplementedError(
          "no child-fault injector: runtime has no child processes");
    }
    return injector(child_endpoint, fault);
  }

  static std::uint64_t key(HostId a, HostId b) {
    const std::uint64_t lo = a.value < b.value ? a.value : b.value;
    const std::uint64_t hi = a.value < b.value ? b.value : a.value;
    return (hi << 32) | lo;
  }

  // Ranked above kRng: should_drop() runs beneath the runtime's rng lock.
  mutable base::SharedMutex mutex_{base::lock_rank::kFaultPlan};
  std::array<std::atomic<double>, kNumLatencyClasses> drop_p_{};
  std::unordered_set<std::uint64_t> partitions_ GUARDED_BY(mutex_);
  std::unordered_set<std::uint32_t> down_ GUARDED_BY(mutex_);
  ChildFaultInjector child_injector_ GUARDED_BY(mutex_);
  std::atomic<int> active_{0};
};

}  // namespace legion::net
