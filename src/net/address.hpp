// Physical addresses, paper Section 3.4.
//
// "An Object Address Element contains, at the highest level, two basic
//  parts: a 32 bit address type field, and 256 bits of address specific
//  information."
//
// The format is reproduced exactly: a 32-bit type tag plus a 32-byte
// payload. Two types are registered: kSim (the simulated transport, payload
// = endpoint id) and kIpV4 (the paper's envisioned common case: 32-bit IP +
// 16-bit port + optional 32-bit multiprocessor node number). Others can be
// added without changing the wire format.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "base/serialize.hpp"
#include "base/types.hpp"

namespace legion::net {

enum class AddressType : std::uint32_t {
  kInvalid = 0,
  kSim = 1,   // in-process simulated transport
  kIpV4 = 2,  // IP + port (+ node number on multiprocessors)
};

class NetworkAddress {
 public:
  static constexpr std::size_t kPayloadBytes = 32;  // 256 bits

  NetworkAddress() = default;

  static NetworkAddress Sim(EndpointId endpoint);
  static NetworkAddress IpV4(std::uint32_t ip, std::uint16_t port,
                             std::uint32_t node = 0);

  [[nodiscard]] AddressType type() const { return type_; }
  [[nodiscard]] bool valid() const { return type_ != AddressType::kInvalid; }
  [[nodiscard]] const std::array<std::uint8_t, kPayloadBytes>& payload() const {
    return payload_;
  }

  // Accessors for the registered encodings. Call only when type() matches.
  [[nodiscard]] EndpointId sim_endpoint() const;
  [[nodiscard]] std::uint32_t ipv4_address() const;
  [[nodiscard]] std::uint16_t ipv4_port() const;
  [[nodiscard]] std::uint32_t ipv4_node() const;

  [[nodiscard]] std::string to_string() const;

  void Serialize(Writer& w) const;
  static NetworkAddress Deserialize(Reader& r);

  friend bool operator==(const NetworkAddress& a, const NetworkAddress& b) {
    return a.type_ == b.type_ && a.payload_ == b.payload_;
  }

 private:
  void put_u64(std::size_t offset, std::uint64_t v);
  [[nodiscard]] std::uint64_t get_u64(std::size_t offset) const;
  void put_u32(std::size_t offset, std::uint32_t v);
  [[nodiscard]] std::uint32_t get_u32(std::size_t offset) const;
  void put_u16(std::size_t offset, std::uint16_t v);
  [[nodiscard]] std::uint16_t get_u16(std::size_t offset) const;

  AddressType type_ = AddressType::kInvalid;
  std::array<std::uint8_t, kPayloadBytes> payload_{};
};

}  // namespace legion::net
