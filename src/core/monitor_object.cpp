#include "core/monitor_object.hpp"

#include "core/active_object.hpp"
#include "core/well_known.hpp"

namespace legion::core {

namespace {
// Guards against hostile element counts: a fleet reply never legitimately
// carries more rows than this.
constexpr std::uint32_t kMaxFleetRows = 1u << 16;

template <typename Row>
void WriteRows(Writer& w, const std::vector<Row>& rows) {
  w.u32(static_cast<std::uint32_t>(rows.size()));
  for (const Row& row : rows) row.Serialize(w);
}

template <typename Row>
std::vector<Row> ReadRows(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<Row> out;
  if (n > kMaxFleetRows) {
    r.mark_failed();
    return out;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(Row::Deserialize(r));
  }
  return out;
}
}  // namespace

void FleetReply::Serialize(Writer& w) const {
  WriteRows(w, hosts);
  WriteRows(w, methods);
}

FleetReply FleetReply::Deserialize(Reader& r) {
  FleetReply reply;
  reply.hosts = ReadRows<obs::FleetRow>(r);
  reply.methods = ReadRows<obs::MethodRow>(r);
  return reply;
}

void MonitorObjectImpl::RegisterMethods(MethodTable& table) {
  table.add(methods::kReportMetrics,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              obs::MetricsSnapshot snapshot =
                  obs::MetricsSnapshot::Deserialize(args);
              if (!args.ok()) {
                return InvalidArgumentError("bad ReportMetrics");
              }
              monitor_.ingest(snapshot, ctx.shell.now());
              return Buffer{};
            });
  table.add(methods::kGetFleet,
            [this](ObjectContext& ctx, Reader&) -> Result<Buffer> {
              FleetReply reply;
              reply.hosts = monitor_.rows(ctx.shell.now());
              reply.methods = monitor_.method_rows();
              return reply.to_buffer();
            });
}

}  // namespace legion::core
