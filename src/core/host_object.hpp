// Host Objects, paper Sections 2.3 and 3.9.
//
// "A Host Object is a host's representative to Legion. It is responsible
//  for executing objects on the host, reaping objects, and reporting object
//  exceptions... the Host Object for a host is ultimately responsible for
//  deciding which objects can run on the host it represents."
//
// The Host Object holds the ActiveObject shells of everything running on
// its host (they execute "with the same privilege as the Host Object") and
// enforces the SetCPULoad / SetMemoryUsage admission limits.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/active_object.hpp"
#include "core/implementation_registry.hpp"
#include "core/object_impl.hpp"
#include "core/wire.hpp"
#include "obs/monitor.hpp"

namespace legion::core {

inline constexpr std::string_view kHostObjectImpl = "legion.host";

// Direct references a Host Object legitimately holds: it is started "from
// outside Legion" on its machine (Section 4.2.1) and is the mechanism by
// which processes come to exist there.
struct HostServices {
  rt::Runtime* runtime = nullptr;
  const ImplementationRegistry* registry = nullptr;
  SystemHandles handles;             // given to every object it starts
  HostId host;
  std::size_t object_cache_capacity = 64;
  SimTime binding_ttl_us = kSimTimeNever;
  // Fleet metrics plane: where to ship periodic delta snapshots, and how
  // often (0 = never publish spontaneously; kPublishMetrics still works).
  Binding monitor;
  SimTime metrics_publish_interval_us = 0;
};

struct HostObjectStats {
  std::uint64_t started = 0;
  std::uint64_t stopped = 0;
  std::uint64_t refused = 0;
};

class HostObjectImpl final : public ObjectImpl {
 public:
  explicit HostObjectImpl(HostServices services,
                          security::PolicyPtr policy = nullptr)
      : services_(std::move(services)), policy_(std::move(policy)) {}

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kHostObjectImpl);
  }
  void RegisterMethods(MethodTable& table) override;
  [[nodiscard]] security::PolicyPtr policy() const override { return policy_; }

  [[nodiscard]] std::size_t active_objects() const { return objects_.size(); }
  [[nodiscard]] const HostObjectStats& host_stats() const { return stats_; }
  [[nodiscard]] HostId host() const { return services_.host; }
  // Direct shell access for same-process collaborators (tests).
  [[nodiscard]] ActiveObject* find_object(const Loid& loid);

  // Propagate refreshed handles to objects started later (bootstrap).
  void set_handles(SystemHandles handles) {
    services_.handles = std::move(handles);
  }

  // Fleet metrics plane (bootstrap / tests): where snapshots go and how
  // often. An interval of 0 disables spontaneous publication.
  void set_monitor(Binding monitor, SimTime interval_us) {
    services_.monitor = std::move(monitor);
    services_.metrics_publish_interval_us = interval_us;
  }
  [[nodiscard]] std::uint64_t metrics_published() const { return published_; }

 private:
  Result<Binding> StartObject(ObjectContext& ctx, const Buffer& opr_bytes);
  Result<Buffer> StopObject(ObjectContext& ctx, const Loid& loid,
                            bool discard_state);
  [[nodiscard]] wire::HostStateReply state_reply() const;
  [[nodiscard]] bool accepting() const;
  // Ships one delta snapshot to the monitor, fire-and-forget. `force` skips
  // the interval check (the kPublishMetrics path).
  void publish_metrics(ObjectContext& ctx, bool force);

  // One running process plus the admission cost it was charged, so
  // StopObject can release exactly what StartObject reserved. Child-backed
  // objects (spawned as their own OS process from a v2 OPR) have no shell:
  // the worker lives behind `endpoint` in another address space, and the
  // host keeps only its published binding plus what it needs to rebuild the
  // OPR on StopObject.
  struct Running {
    std::unique_ptr<ActiveObject> shell;  // null when child == true
    std::uint64_t state_size = 0;
    Binding binding;                      // child path: published address
    EndpointId endpoint{};                // child path: serving endpoint
    std::string impl_spec;                // child path: OPR implementation
    std::string executable;               // preserved into rebuilt OPRs
    bool child = false;
  };
  // Reaps one entry's admission charge and accounting (shared by StopObject
  // and the CheckObjects dead-worker path).
  void reap_record(std::unordered_map<Loid, Running>::iterator it);

  HostServices services_;
  security::PolicyPtr policy_;
  // Created on first publish (needs the runtime's registry).
  std::unique_ptr<obs::SnapshotCollector> collector_;
  SimTime last_publish_ = 0;
  std::uint64_t published_ = 0;
  std::unordered_map<Loid, Running> objects_;
  std::uint64_t max_objects_ = 0;   // 0 = unlimited (SetCPULoad)
  std::uint64_t max_memory_ = 0;    // 0 = unlimited (SetMemoryUsage, bytes)
  std::uint64_t memory_used_ = 0;   // sum of restored state sizes
  HostObjectStats stats_;
};

}  // namespace legion::core
