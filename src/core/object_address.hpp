// Object Addresses, paper Section 3.4 and replication per Section 4.3.
//
// "An Object Address is a list of Object Address Elements, along with
//  semantic information that describes how to utilize the list. The address
//  semantic is intended to encapsulate various forms of multicast
//  communication. For example ... all addresses should be sent to, that one
//  of the addresses should be chosen at random, that k of the N addresses in
//  the list should be used."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/serialize.hpp"
#include "net/address.hpp"

namespace legion::core {

// An Object Address Element is precisely the paper's 32-bit-type + 256-bit
// physical address (net::NetworkAddress reproduces that layout).
using ObjectAddressElement = net::NetworkAddress;

enum class AddressSemantic : std::uint8_t {
  kAll = 0,        // send to every element
  kRandomOne = 1,  // choose one element at random
  kKOfN = 2,       // send to k randomly chosen elements
  kFirst = 3,      // always the first element (primary replica)
};

[[nodiscard]] std::string_view to_string(AddressSemantic s);

class ObjectAddress {
 public:
  ObjectAddress() = default;
  explicit ObjectAddress(ObjectAddressElement single)
      : elements_{std::move(single)} {}
  ObjectAddress(std::vector<ObjectAddressElement> elements,
                AddressSemantic semantic, std::uint32_t k = 1)
      : elements_(std::move(elements)), semantic_(semantic), k_(k) {}

  [[nodiscard]] bool valid() const { return !elements_.empty(); }
  [[nodiscard]] const std::vector<ObjectAddressElement>& elements() const {
    return elements_;
  }
  [[nodiscard]] AddressSemantic semantic() const { return semantic_; }
  [[nodiscard]] std::uint32_t k() const { return k_; }

  void add_element(ObjectAddressElement element) {
    elements_.push_back(std::move(element));
  }

  // Chooses the element indices one invocation should target, honouring the
  // address semantic. Always returns at least one index when valid().
  [[nodiscard]] std::vector<std::size_t> select_targets(Rng& rng) const;

  [[nodiscard]] std::string to_string() const;

  void Serialize(Writer& w) const;
  static ObjectAddress Deserialize(Reader& r);

  friend bool operator==(const ObjectAddress& a, const ObjectAddress& b) {
    return a.elements_ == b.elements_ && a.semantic_ == b.semantic_ &&
           a.k_ == b.k_;
  }

 private:
  std::vector<ObjectAddressElement> elements_;
  AddressSemantic semantic_ = AddressSemantic::kFirst;
  std::uint32_t k_ = 1;
};

}  // namespace legion::core
