// Wire formats of the core object protocol.
//
// One struct per request/reply, each with Serialize/Deserialize and
// to_buffer()/from_buffer() helpers so handlers stay declarative. All
// formats are length-checked on the way in (untrusted input).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/buffer.hpp"
#include "base/loid.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"
#include "core/binding.hpp"
#include "core/interface.hpp"

namespace legion::core::wire {

namespace detail {
template <typename T>
Buffer ToBuffer(const T& msg) {
  Buffer out;
  Writer w(out);
  msg.Serialize(w);
  return out;
}
template <typename T>
Result<T> FromBuffer(const Buffer& buf) {
  Reader r(buf);
  T msg = T::Deserialize(r);
  if (!r.ok()) return InvalidArgumentError("malformed wire message");
  return msg;
}
}  // namespace detail

#define LEGION_WIRE_HELPERS(T)                                    \
  [[nodiscard]] Buffer to_buffer() const {                        \
    return ::legion::core::wire::detail::ToBuffer(*this);         \
  }                                                               \
  [[nodiscard]] static Result<T> from_buffer(const Buffer& buf) { \
    return ::legion::core::wire::detail::FromBuffer<T>(buf);      \
  }

// ---- Binding protocol (Binding Agents & class GetBinding, Section 3.6) ----

enum class GetBindingMode : std::uint8_t {
  kByLoid = 0,    // GetBinding(LOID)
  kRefresh = 1,   // GetBinding(binding): "return a different binding"
};

struct GetBindingRequest {
  GetBindingMode mode = GetBindingMode::kByLoid;
  Loid loid;      // set in both modes (refresh carries stale.loid too)
  Binding stale;  // meaningful in kRefresh mode

  void Serialize(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(mode));
    loid.Serialize(w);
    stale.Serialize(w);
  }
  static GetBindingRequest Deserialize(Reader& r) {
    GetBindingRequest m;
    m.mode = static_cast<GetBindingMode>(r.u8());
    m.loid = Loid::Deserialize(r);
    m.stale = Binding::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(GetBindingRequest)
};

struct BindingReply {
  Binding binding;

  void Serialize(Writer& w) const { binding.Serialize(w); }
  static BindingReply Deserialize(Reader& r) {
    return BindingReply{Binding::Deserialize(r)};
  }
  LEGION_WIRE_HELPERS(BindingReply)
};

struct AddBindingRequest {
  Binding binding;

  void Serialize(Writer& w) const { binding.Serialize(w); }
  static AddBindingRequest Deserialize(Reader& r) {
    return AddBindingRequest{Binding::Deserialize(r)};
  }
  LEGION_WIRE_HELPERS(AddBindingRequest)
};

struct InvalidateBindingRequest {
  GetBindingMode mode = GetBindingMode::kByLoid;  // by-LOID or exact binding
  Loid loid;
  Binding binding;

  void Serialize(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(mode));
    loid.Serialize(w);
    binding.Serialize(w);
  }
  static InvalidateBindingRequest Deserialize(Reader& r) {
    InvalidateBindingRequest m;
    m.mode = static_cast<GetBindingMode>(r.u8());
    m.loid = Loid::Deserialize(r);
    m.binding = Binding::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(InvalidateBindingRequest)
};

// ---- Class-mandatory protocol (Section 3.7) --------------------------------

struct CreateRequest {
  Buffer init_state;                      // primary implementation's state
  std::vector<Loid> candidate_magistrates;  // empty = class default
  Loid suggested_host;                      // scheduling suggestion (optional)

  void Serialize(Writer& w) const {
    w.buffer(init_state);
    WriteVector(w, candidate_magistrates);
    suggested_host.Serialize(w);
  }
  static CreateRequest Deserialize(Reader& r) {
    CreateRequest m;
    m.init_state = r.buffer();
    m.candidate_magistrates = ReadVector<Loid>(r);
    m.suggested_host = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(CreateRequest)
};

struct CreateReply {
  Loid loid;
  Binding binding;

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    binding.Serialize(w);
  }
  static CreateReply Deserialize(Reader& r) {
    CreateReply m;
    m.loid = Loid::Deserialize(r);
    m.binding = Binding::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(CreateReply)
};

// System-level replication (Section 4.3): one LOID implemented by several
// processes behind a multi-element Object Address.
struct CreateReplicatedRequest {
  Buffer init_state;
  std::uint32_t replicas = 1;
  std::uint8_t semantic = 0;  // AddressSemantic
  std::uint32_t k = 1;        // for k-of-n
  std::vector<Loid> candidate_magistrates;

  void Serialize(Writer& w) const {
    w.buffer(init_state);
    w.u32(replicas);
    w.u8(semantic);
    w.u32(k);
    WriteVector(w, candidate_magistrates);
  }
  static CreateReplicatedRequest Deserialize(Reader& r) {
    CreateReplicatedRequest m;
    m.init_state = r.buffer();
    m.replicas = r.u32();
    m.semantic = r.u8();
    m.k = r.u32();
    m.candidate_magistrates = ReadVector<Loid>(r);
    return m;
  }
  LEGION_WIRE_HELPERS(CreateReplicatedRequest)
};

struct StoreNewReplicatedRequest {
  Buffer opr_bytes;
  std::uint32_t replicas = 1;
  std::uint8_t semantic = 0;
  std::uint32_t k = 1;

  void Serialize(Writer& w) const {
    w.buffer(opr_bytes);
    w.u32(replicas);
    w.u8(semantic);
    w.u32(k);
  }
  static StoreNewReplicatedRequest Deserialize(Reader& r) {
    StoreNewReplicatedRequest m;
    m.opr_bytes = r.buffer();
    m.replicas = r.u32();
    m.semantic = static_cast<std::uint8_t>(r.u8());
    m.k = r.u32();
    return m;
  }
  LEGION_WIRE_HELPERS(StoreNewReplicatedRequest)
};

// Class type flags, Section 2.1.2: empty Create / Derive / InheritFrom.
inline constexpr std::uint8_t kClassFlagAbstract = 1u << 0;
inline constexpr std::uint8_t kClassFlagPrivate = 1u << 1;
inline constexpr std::uint8_t kClassFlagFixed = 1u << 2;
// Marks a clone (Section 5.2.2); clones refuse further cloning.
inline constexpr std::uint8_t kClassFlagClone = 1u << 3;
// Serialization-only marker: the ClassDefinition byte stream carries an
// instance_executable string after its fixed fields. Never stored in a
// live definition's flags (stripped on deserialize) — it exists so old
// executable-less streams stay byte-identical even though ClassDefinition
// is embedded mid-stream (a trailing-bytes probe can't work there).
inline constexpr std::uint8_t kClassFlagHasExecutable = 1u << 7;

struct DeriveRequest {
  std::string name;
  std::string instance_impl;  // "" = inherit the superclass's implementation
  InterfaceDescription extra_interface;
  std::uint8_t flags = 0;
  std::vector<Loid> candidate_magistrates;  // empty = superclass default
  // Path of a worker binary able to host instances of this class as their
  // own OS processes (lands in every instance OPR's executable field; see
  // persist::Opr). "" = in-process activation. Appended to the wire format
  // only when set, so the encoding of executable-less requests is unchanged.
  std::string instance_executable;

  void Serialize(Writer& w) const {
    w.str(name);
    w.str(instance_impl);
    extra_interface.Serialize(w);
    w.u8(flags);
    WriteVector(w, candidate_magistrates);
    if (!instance_executable.empty()) w.str(instance_executable);
  }
  static DeriveRequest Deserialize(Reader& r) {
    DeriveRequest m;
    m.name = r.str();
    m.instance_impl = r.str();
    m.extra_interface = InterfaceDescription::Deserialize(r);
    m.flags = r.u8();
    m.candidate_magistrates = ReadVector<Loid>(r);
    if (r.ok() && !r.exhausted()) m.instance_executable = r.str();
    return m;
  }
  LEGION_WIRE_HELPERS(DeriveRequest)
};

struct LoidRequest {  // InheritFrom / Delete / ListInstances cursor etc.
  Loid loid;

  void Serialize(Writer& w) const { loid.Serialize(w); }
  static LoidRequest Deserialize(Reader& r) {
    return LoidRequest{Loid::Deserialize(r)};
  }
  LEGION_WIRE_HELPERS(LoidRequest)
};

struct LoidListReply {
  std::vector<Loid> loids;

  void Serialize(Writer& w) const { WriteVector(w, loids); }
  static LoidListReply Deserialize(Reader& r) {
    return LoidListReply{ReadVector<Loid>(r)};
  }
  LEGION_WIRE_HELPERS(LoidListReply)
};

struct DescribeClassReply {
  std::uint64_t class_id = 0;
  std::string name;
  InterfaceDescription interface;
  std::string impl_spec;
  std::uint8_t flags = 0;

  void Serialize(Writer& w) const {
    w.u64(class_id);
    w.str(name);
    interface.Serialize(w);
    w.str(impl_spec);
    w.u8(flags);
  }
  static DescribeClassReply Deserialize(Reader& r) {
    DescribeClassReply m;
    m.class_id = r.u64();
    m.name = r.str();
    m.interface = InterfaceDescription::Deserialize(r);
    m.impl_spec = r.str();
    m.flags = r.u8();
    return m;
  }
  LEGION_WIRE_HELPERS(DescribeClassReply)
};

struct ReportMoveRequest {
  Loid object;
  Loid new_magistrate;

  void Serialize(Writer& w) const {
    object.Serialize(w);
    new_magistrate.Serialize(w);
  }
  static ReportMoveRequest Deserialize(Reader& r) {
    ReportMoveRequest m;
    m.object = Loid::Deserialize(r);
    m.new_magistrate = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(ReportMoveRequest)
};

struct MoveInstanceRequest {
  Loid object;
  Loid dest_magistrate;

  void Serialize(Writer& w) const {
    object.Serialize(w);
    dest_magistrate.Serialize(w);
  }
  static MoveInstanceRequest Deserialize(Reader& r) {
    MoveInstanceRequest m;
    m.object = Loid::Deserialize(r);
    m.dest_magistrate = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(MoveInstanceRequest)
};

// NotifyStarted: bootstrap components registering with their class
// (Section 4.2.1).
struct NotifyStartedRequest {
  Loid loid;
  Binding binding;

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    binding.Serialize(w);
  }
  static NotifyStartedRequest Deserialize(Reader& r) {
    NotifyStartedRequest m;
    m.loid = Loid::Deserialize(r);
    m.binding = Binding::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(NotifyStartedRequest)
};

// ---- LegionClass metaclass protocol (Section 4.1.3) ------------------------

struct AssignClassIdRequest {
  Loid creator;

  void Serialize(Writer& w) const { creator.Serialize(w); }
  static AssignClassIdRequest Deserialize(Reader& r) {
    return AssignClassIdRequest{Loid::Deserialize(r)};
  }
  LEGION_WIRE_HELPERS(AssignClassIdRequest)
};

struct AssignClassIdReply {
  std::uint64_t class_id = 0;

  void Serialize(Writer& w) const { w.u64(class_id); }
  static AssignClassIdReply Deserialize(Reader& r) {
    return AssignClassIdReply{r.u64()};
  }
  LEGION_WIRE_HELPERS(AssignClassIdReply)
};

struct LocateClassReply {
  enum class Kind : std::uint8_t {
    kBinding = 0,   // LegionClass maintains this binding itself
    kDelegate = 1,  // "ask the creator": responsibility pair <creator, X>
  };
  Kind kind = Kind::kBinding;
  Binding binding;
  Loid creator;

  void Serialize(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    binding.Serialize(w);
    creator.Serialize(w);
  }
  static LocateClassReply Deserialize(Reader& r) {
    LocateClassReply m;
    m.kind = static_cast<Kind>(r.u8());
    m.binding = Binding::Deserialize(r);
    m.creator = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(LocateClassReply)
};

// ---- Magistrate protocol (Section 3.8) --------------------------------------

struct StoreNewRequest {
  Buffer opr_bytes;
  Loid suggested_host;

  void Serialize(Writer& w) const {
    w.buffer(opr_bytes);
    suggested_host.Serialize(w);
  }
  static StoreNewRequest Deserialize(Reader& r) {
    StoreNewRequest m;
    m.opr_bytes = r.buffer();
    m.suggested_host = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(StoreNewRequest)
};

struct ActivateRequest {
  Loid loid;
  Loid suggested_host;  // the Activate(LOID, LOID) overload

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    suggested_host.Serialize(w);
  }
  static ActivateRequest Deserialize(Reader& r) {
    ActivateRequest m;
    m.loid = Loid::Deserialize(r);
    m.suggested_host = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(ActivateRequest)
};

// Reply to StoreNew / Activate / Reactivate. Serializes the binding FIRST so
// that callers expecting a plain BindingReply still parse it (FromBuffer
// tolerates trailing bytes); the extra fields tell the class object where
// the instance runs and where its recovery checkpoint lives, the per-row
// bookkeeping of the failure-detection sweep.
struct PlacementReply {
  Binding binding;
  Loid host;                           // Host Object running the process
  std::uint32_t checkpoint_disk = 0;   // persist::DiskId (0 = no checkpoint)
  std::string checkpoint_path;

  void Serialize(Writer& w) const {
    binding.Serialize(w);
    host.Serialize(w);
    w.u32(checkpoint_disk);
    w.str(checkpoint_path);
  }
  static PlacementReply Deserialize(Reader& r) {
    PlacementReply m;
    m.binding = Binding::Deserialize(r);
    m.host = Loid::Deserialize(r);
    m.checkpoint_disk = r.u32();
    m.checkpoint_path = r.str();
    return m;
  }
  LEGION_WIRE_HELPERS(PlacementReply)
};

// Restart an object whose host died, from its checkpointed OPR, on a live
// host. `dead_host` is excluded from placement even if the (possibly stale)
// Scheduling Agent still suggests it.
struct ReactivateRequest {
  Loid loid;
  Loid suggested_host;
  Loid dead_host;

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    suggested_host.Serialize(w);
    dead_host.Serialize(w);
  }
  static ReactivateRequest Deserialize(Reader& r) {
    ReactivateRequest m;
    m.loid = Loid::Deserialize(r);
    m.suggested_host = Loid::Deserialize(r);
    m.dead_host = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(ReactivateRequest)
};

// Outcome of one class-object failure-detection sweep.
struct SweepReply {
  std::uint32_t hosts_probed = 0;
  std::uint32_t hosts_suspect = 0;    // probed hosts past the miss threshold
  std::uint32_t reactivated = 0;      // instances restarted elsewhere
  std::uint32_t failed = 0;           // instances whose reactivation failed
  std::uint32_t fences_released = 0;  // stale copies reaped on revived hosts
  // Instances whose *process* died on a live host (kill -9 of a worker
  // child; found via CheckObjects, reactivated without condemning the host).
  std::uint32_t instances_dead = 0;

  void Serialize(Writer& w) const {
    w.u32(hosts_probed);
    w.u32(hosts_suspect);
    w.u32(reactivated);
    w.u32(failed);
    w.u32(fences_released);
    w.u32(instances_dead);
  }
  static SweepReply Deserialize(Reader& r) {
    SweepReply m;
    m.hosts_probed = r.u32();
    m.hosts_suspect = r.u32();
    m.reactivated = r.u32();
    m.failed = r.u32();
    m.fences_released = r.u32();
    if (r.ok() && !r.exhausted()) m.instances_dead = r.u32();
    return m;
  }
  LEGION_WIRE_HELPERS(SweepReply)
};

// Tunes a class object's failure detector.
struct RecoveryPolicyRequest {
  std::uint32_t suspect_threshold = 2;  // consecutive missed probes
  SimTime probe_timeout_us = 200'000;

  void Serialize(Writer& w) const {
    w.u32(suspect_threshold);
    w.i64(probe_timeout_us);
  }
  static RecoveryPolicyRequest Deserialize(Reader& r) {
    RecoveryPolicyRequest m;
    m.suspect_threshold = r.u32();
    m.probe_timeout_us = r.i64();
    return m;
  }
  LEGION_WIRE_HELPERS(RecoveryPolicyRequest)
};

struct TransferRequest {  // Copy(LOID, LOID) and Move(LOID, LOID)
  Loid object;
  Loid dest_magistrate;

  void Serialize(Writer& w) const {
    object.Serialize(w);
    dest_magistrate.Serialize(w);
  }
  static TransferRequest Deserialize(Reader& r) {
    TransferRequest m;
    m.object = Loid::Deserialize(r);
    m.dest_magistrate = Loid::Deserialize(r);
    return m;
  }
  LEGION_WIRE_HELPERS(TransferRequest)
};

struct ReceiveOprRequest {
  Buffer opr_bytes;

  void Serialize(Writer& w) const { w.buffer(opr_bytes); }
  static ReceiveOprRequest Deserialize(Reader& r) {
    return ReceiveOprRequest{r.buffer()};
  }
  LEGION_WIRE_HELPERS(ReceiveOprRequest)
};

// ---- Host Object protocol (Section 3.9) -------------------------------------

struct StartObjectRequest {
  Buffer opr_bytes;

  void Serialize(Writer& w) const { w.buffer(opr_bytes); }
  static StartObjectRequest Deserialize(Reader& r) {
    return StartObjectRequest{r.buffer()};
  }
  LEGION_WIRE_HELPERS(StartObjectRequest)
};

struct StartObjectReply {
  Binding binding;

  void Serialize(Writer& w) const { binding.Serialize(w); }
  static StartObjectReply Deserialize(Reader& r) {
    return StartObjectReply{Binding::Deserialize(r)};
  }
  LEGION_WIRE_HELPERS(StartObjectReply)
};

struct StopObjectRequest {
  Loid loid;
  bool discard_state = false;  // Delete() path: no OPR wanted

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    w.boolean(discard_state);
  }
  static StopObjectRequest Deserialize(Reader& r) {
    StopObjectRequest m;
    m.loid = Loid::Deserialize(r);
    m.discard_state = r.boolean();
    return m;
  }
  LEGION_WIRE_HELPERS(StopObjectRequest)
};

struct StopObjectReply {
  Buffer opr_bytes;  // empty when discarded

  void Serialize(Writer& w) const { w.buffer(opr_bytes); }
  static StopObjectReply Deserialize(Reader& r) {
    return StopObjectReply{r.buffer()};
  }
  LEGION_WIRE_HELPERS(StopObjectReply)
};

// CheckObjects (process-isolation liveness): the class object asks a Host
// Object — whose own probe just succeeded — which of the listed instances
// are still running. With per-process activation a worker can die (kill -9)
// while its host stays healthy, so host-level probing alone cannot see the
// death; this is the per-instance half of the failure-detection sweep.
struct CheckObjectsRequest {
  std::vector<Loid> loids;

  void Serialize(Writer& w) const { WriteVector(w, loids); }
  static CheckObjectsRequest Deserialize(Reader& r) {
    return CheckObjectsRequest{ReadVector<Loid>(r)};
  }
  LEGION_WIRE_HELPERS(CheckObjectsRequest)
};

struct CheckObjectsReply {
  std::vector<Loid> dead;  // listed instances no longer running here

  void Serialize(Writer& w) const { WriteVector(w, dead); }
  static CheckObjectsReply Deserialize(Reader& r) {
    return CheckObjectsReply{ReadVector<Loid>(r)};
  }
  LEGION_WIRE_HELPERS(CheckObjectsReply)
};

struct HostStateReply {
  double cpu_load = 0.0;
  std::uint32_t active_objects = 0;
  double capacity = 1.0;
  bool accepting = true;

  void Serialize(Writer& w) const {
    w.f64(cpu_load);
    w.u32(active_objects);
    w.f64(capacity);
    w.boolean(accepting);
  }
  static HostStateReply Deserialize(Reader& r) {
    HostStateReply m;
    m.cpu_load = r.f64();
    m.active_objects = r.u32();
    m.capacity = r.f64();
    m.accepting = r.boolean();
    return m;
  }
  LEGION_WIRE_HELPERS(HostStateReply)
};

struct SetLimitRequest {  // SetCPULoad / SetMemoryUsage
  std::uint64_t limit = 0;

  void Serialize(Writer& w) const { w.u64(limit); }
  static SetLimitRequest Deserialize(Reader& r) {
    return SetLimitRequest{r.u64()};
  }
  LEGION_WIRE_HELPERS(SetLimitRequest)
};

// ---- Misc -------------------------------------------------------------------

struct LoidReply {
  Loid loid;

  void Serialize(Writer& w) const { loid.Serialize(w); }
  static LoidReply Deserialize(Reader& r) {
    return LoidReply{Loid::Deserialize(r)};
  }
  LEGION_WIRE_HELPERS(LoidReply)
};

struct StringRequest {
  std::string value;

  void Serialize(Writer& w) const { w.str(value); }
  static StringRequest Deserialize(Reader& r) {
    return StringRequest{r.str()};
  }
  LEGION_WIRE_HELPERS(StringRequest)
};

#undef LEGION_WIRE_HELPERS

}  // namespace legion::core::wire
