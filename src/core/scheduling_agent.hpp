// Scheduling Agents, paper Section 3.7.
//
// "The Scheduling Agent field contains the LOID of the object that is
//  responsible for scheduling the object entered in the table. Scheduling
//  is intentionally left out of the core object model, except for a few
//  'hooks' ... It is expected that each class will have a default
//  Scheduling Agent that is inherited by each of its objects unless a
//  different Scheduling Agent is explicitly specified."
//
// A Scheduling Agent is an ordinary Legion object: classes consult it
// during Create() (the hook), it asks the jurisdiction's Magistrate for its
// Host Objects, queries their GetState(), and applies a placement policy.
// Complex policies live here, outside the Magistrate — exactly as Section
// 3.8 prescribes ("complex scheduling policies are intended to be
// implemented outside of the Magistrate in Scheduling Agents").
#pragma once

#include <memory>
#include <string>

#include "core/implementation_registry.hpp"
#include "core/object_impl.hpp"
#include "sched/placement.hpp"

namespace legion::core {

inline constexpr std::string_view kSchedulingAgentImpl =
    "legion.scheduling-agent";

class SchedulingAgentImpl final : public ObjectImpl {
 public:
  SchedulingAgentImpl() { rebuild("round-robin"); }
  explicit SchedulingAgentImpl(std::string policy_name) {
    rebuild(std::move(policy_name));
  }

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kSchedulingAgentImpl);
  }
  void RegisterMethods(MethodTable& table) override;
  void SaveState(Writer& w) const override { w.str(policy_name_); }
  Status RestoreState(Reader& r) override {
    if (!r.exhausted()) rebuild(r.str());
    return r.ok() ? OkStatus() : InvalidArgumentError("bad agent state");
  }
  [[nodiscard]] InterfaceDescription interface() const override {
    InterfaceDescription d("SchedulingAgent");
    d.add_method(MethodSignature{"loid", "SuggestHost",
                                 {{"loid", "magistrate"}}});
    return d;
  }

  [[nodiscard]] const std::string& policy_name() const { return policy_name_; }

 private:
  void rebuild(std::string policy_name) {
    policy_name_ = std::move(policy_name);
    policy_ = sched::MakePolicy(policy_name_);
    if (!policy_) {
      policy_name_ = "round-robin";
      policy_ = sched::MakePolicy(policy_name_);
    }
  }

  std::string policy_name_;
  std::unique_ptr<sched::PlacementPolicy> policy_;
};

// Registers the scheduling-agent implementation with a registry; the OPR
// init state is the placement policy name ("random", "round-robin",
// "least-loaded").
Status RegisterSchedulingImpls(ImplementationRegistry& registry);

// Create()-time init state selecting the agent's placement policy.
[[nodiscard]] inline Buffer SchedulingAgentInit(std::string_view policy) {
  Buffer b;
  Writer w(b);
  w.str(policy);
  return b;
}

}  // namespace legion::core
