// The implementation registry: Legion's stand-in for shipped executables.
//
// Paper Section 4.2 lets a class hand a Magistrate "an executable program,
// the name of an executable, a list of steps to follow" to create an object.
// In-process we cannot load native code at run time, so an OPR instead names
// implementations registered here. A '+'-separated spec ("worker+loggable")
// composes several implementations into one object — the mechanism behind
// run-time multiple inheritance (Section 2.1.1): the first name is the
// derived implementation, later names are bases, and method lookup takes the
// first registration of each name.
//
// Storage layout: names are interned to dense uint32_t ids and factories
// live in a segmented per-id slot array — the same packed-table shape as
// LogicalTable / BindingCache, so a registry holding many implementations
// resolves a spec with flat-array lookups, not tree walks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/interner.hpp"
#include "base/mutex.hpp"
#include "base/status.hpp"
#include "base/thread_annotations.hpp"
#include "core/object_impl.hpp"

namespace legion::core {

using ImplFactory = std::function<std::unique_ptr<ObjectImpl>()>;

class ImplementationRegistry {
 public:
  Status add(const std::string& name, ImplFactory factory);
  [[nodiscard]] bool contains(const std::string& name) const;
  // Registered names in sorted order (deterministic regardless of
  // registration sequence).
  [[nodiscard]] std::vector<std::string> names() const;

  // Instantiates every implementation named in a '+'-separated spec, in
  // spec order.
  [[nodiscard]] Result<std::vector<std::unique_ptr<ObjectImpl>>> instantiate(
      const std::string& spec) const;

  // Joins implementation names into a spec, deduplicating while preserving
  // first occurrence order.
  [[nodiscard]] static std::string JoinSpec(
      const std::vector<std::string>& names);
  [[nodiscard]] static std::vector<std::string> SplitSpec(
      const std::string& spec);

 private:
  // Registration happens at bootstrap, but nothing stops a host from adding
  // implementations while concurrent activations instantiate: reads take
  // the shared side, add() the exclusive side. Factories are *invoked*
  // outside the lock — slots are append-only and pointer-stable (segmented
  // storage), and a registered factory is never reassigned, so a pointer
  // collected under the shared lock stays valid forever.
  mutable base::SharedMutex mutex_;
  Interner<std::string> ids_ GUARDED_BY(mutex_);
  SegmentedVector<ImplFactory> factories_ GUARDED_BY(mutex_);  // one per id
};

}  // namespace legion::core
