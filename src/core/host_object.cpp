#include "core/host_object.hpp"

#include <algorithm>
#include <utility>

#include "core/binding_agent.hpp"
#include "core/class_object.hpp"
#include "core/legion_class.hpp"
#include "core/well_known.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/opr.hpp"
#include "rt/runtime.hpp"

namespace legion::core {

namespace {
// Endpoint label by implementation kind: Section 5's experiments measure
// per-component-kind load.
std::string LabelFor(const std::string& impl_spec) {
  const auto parts = ImplementationRegistry::SplitSpec(impl_spec);
  if (parts.empty()) return "object";
  const std::string& primary = parts.front();
  if (primary == kClassObjectImpl || primary == kLegionClassImpl) {
    return "class";
  }
  if (primary == kBindingAgentImpl) return "binding-agent";
  return "object";
}
}  // namespace

ActiveObject* HostObjectImpl::find_object(const Loid& loid) {
  auto it = objects_.find(loid);
  return it == objects_.end() ? nullptr : it->second.shell.get();
}

bool HostObjectImpl::accepting() const {
  // A zero-capacity host advertises an infinite cpu_load; refusing here
  // keeps the placement path from ever selecting it.
  const net::HostInfo* info =
      services_.runtime->topology().host(services_.host);
  if (info != nullptr && info->capacity <= 0.0) return false;
  if (max_objects_ != 0 && objects_.size() >= max_objects_) return false;
  if (max_memory_ != 0 && memory_used_ >= max_memory_) return false;
  return true;
}

wire::HostStateReply HostObjectImpl::state_reply() const {
  const net::HostInfo* info =
      services_.runtime->topology().host(services_.host);
  const double capacity = info != nullptr ? info->capacity : 1.0;
  wire::HostStateReply reply;
  reply.active_objects = static_cast<std::uint32_t>(objects_.size());
  reply.capacity = capacity;
  reply.cpu_load =
      capacity > 0.0 ? static_cast<double>(objects_.size()) / capacity : 1e9;
  reply.accepting = accepting();
  return reply;
}

Result<Binding> HostObjectImpl::StartObject(ObjectContext& ctx,
                                            const Buffer& opr_bytes) {
  if (!accepting()) {
    ++stats_.refused;
    services_.runtime->metrics().counter("host.starts_refused").inc();
    return ResourceExhaustedError("host at its configured limits");
  }
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr, persist::Opr::from_bytes(opr_bytes));
  if (objects_.contains(opr.loid)) {
    return AlreadyExistsError(opr.loid.to_string() + " already running here");
  }

  Binding binding;
  EndpointId object_endpoint;
  Running record;
  rt::ProcessControl* pc = services_.runtime->process_control();
  if (!opr.executable.empty() && pc != nullptr) {
    // The OPR names a worker binary and this runtime can fork/exec: run the
    // object as its own OS process (the paper's literal address-space-
    // disjoint model). The host never links the object's code — everything
    // the worker needs travels in the OPR and the system handles.
    rt::SpawnSpec spec;
    spec.executable = opr.executable;
    spec.host = services_.host;
    spec.label = opr.loid.to_string();
    spec.opr_bytes = opr_bytes;
    Writer hw(spec.handles_bytes);
    services_.handles.Serialize(hw);
    LEGION_ASSIGN_OR_RETURN(rt::SpawnInfo info, pc->spawn_object(spec));

    binding.loid = opr.loid;
    binding.address = ObjectAddress{ObjectAddressElement::Sim(info.endpoint)};
    binding.expires = services_.binding_ttl_us == kSimTimeNever
                          ? kSimTimeNever
                          : services_.runtime->now() + services_.binding_ttl_us;
    object_endpoint = info.endpoint;
    record.binding = binding;
    record.endpoint = info.endpoint;
    record.impl_spec = opr.implementation;
    record.child = true;
  } else {
    LEGION_ASSIGN_OR_RETURN(
        auto impls, services_.registry->instantiate(opr.implementation));

    ActiveObjectConfig config;
    config.label = LabelFor(opr.implementation);
    config.cache_capacity = services_.object_cache_capacity;
    config.binding_ttl_us = services_.binding_ttl_us;
    auto shell = std::make_unique<ActiveObject>(
        *services_.runtime, services_.host, opr.loid, std::move(impls),
        services_.handles, std::move(config));
    LEGION_RETURN_IF_ERROR(shell->restore(opr.state));

    binding = shell->binding();
    object_endpoint = shell->messenger().endpoint();
    record.shell = std::move(shell);
  }
  record.state_size = opr.state.size();
  record.executable = opr.executable;
  memory_used_ += record.state_size;
  objects_.emplace(opr.loid, std::move(record));
  ++stats_.started;

  obs::Registry& metrics = services_.runtime->metrics();
  metrics.counter("host.objects_started").inc();
  metrics.gauge("host.active_objects").add(1);
  // Activation is a hop of the causal chain that requested it: a trace that
  // ends in a StartObject shows *where* the object came to life.
  if (ctx.call.env.trace_id != 0) {
    obs::TraceHop hop;
    hop.trace_id = ctx.call.env.trace_id;
    hop.hop = ctx.call.env.hop + 1;
    hop.at = services_.runtime->now();
    hop.src = ctx.shell.messenger().endpoint().value;
    hop.dst = object_endpoint.value;
    hop.kind = obs::HopKind::kActivate;
    hop.set_method(methods::kStartObject);
    services_.runtime->traces().record(hop);
  }
  return binding;
}

void HostObjectImpl::reap_record(
    std::unordered_map<Loid, Running>::iterator it) {
  // Release the admission charge taken at StartObject, so a host that
  // cycles objects under a memory limit does not fill up while empty.
  memory_used_ -= std::min(memory_used_, it->second.state_size);
  // Destroying the shell closes the endpoint: the "process" is reaped.
  objects_.erase(it);
  ++stats_.stopped;
  services_.runtime->metrics().counter("host.objects_stopped").inc();
  services_.runtime->metrics().gauge("host.active_objects").sub(1);
}

Result<Buffer> HostObjectImpl::StopObject(ObjectContext& ctx, const Loid& loid,
                                          bool discard_state) {
  auto it = objects_.find(loid);
  if (it == objects_.end()) {
    return NotFoundError(loid.to_string() + " not running on this host");
  }
  Buffer opr_bytes;
  if (!discard_state) {
    // Fetch the state over the object's own endpoint so the capture
    // serializes with whatever it is currently doing. For child-backed
    // objects this crosses the process boundary like any other call.
    const Binding target = it->second.child ? it->second.binding
                                            : it->second.shell->binding();
    LEGION_ASSIGN_OR_RETURN(
        Buffer state,
        ctx.shell.resolver().call_binding(
            target, methods::kSaveState, Buffer{},
            ctx.outgoing_env(), rt::Messenger::kDefaultTimeoutUs));
    persist::Opr opr;
    opr.loid = loid;
    opr.implementation = it->second.child ? it->second.impl_spec
                                          : it->second.shell->impl_spec();
    opr.executable = it->second.executable;
    opr.state = std::move(state);
    opr_bytes = opr.to_bytes();
  }
  if (it->second.child) {
    // Graceful SIGTERM -> bounded wait -> SIGKILL; always reaps the pid. A
    // worker that is already gone is fine — the record is discarded anyway.
    if (rt::ProcessControl* pc = services_.runtime->process_control()) {
      (void)pc->stop_child(it->second.endpoint);
    }
  }
  reap_record(it);
  return opr_bytes;
}

void HostObjectImpl::publish_metrics(ObjectContext& ctx, bool force) {
  if (!services_.monitor.valid() || services_.runtime == nullptr) return;
  const SimTime now = ctx.shell.now();
  if (!force) {
    const SimTime interval = services_.metrics_publish_interval_us;
    if (interval <= 0) return;
    if (last_publish_ != 0 && now - last_publish_ < interval) return;
  }
  if (!collector_) {
    collector_ = std::make_unique<obs::SnapshotCollector>(
        services_.runtime->metrics(), services_.host.value);
  }
  const obs::MetricsSnapshot snapshot = collector_->collect(now);
  last_publish_ = now;
  ++published_;
  Buffer bytes;
  Writer w(bytes);
  snapshot.Serialize(w);
  // Fire and forget: a monitoring gap must never stall the host's serving
  // loop, so the future (and any eventual reply) is deliberately dropped.
  const EndpointId monitor =
      services_.monitor.address.elements().front().sim_endpoint();
  (void)ctx.shell.messenger().invoke(monitor, methods::kReportMetrics,
                                     std::move(bytes), ctx.outgoing_env());
}

void HostObjectImpl::RegisterMethods(MethodTable& table) {
  table.add(methods::kStartObject,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::StartObjectRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad StartObject");
              LEGION_ASSIGN_OR_RETURN(Binding binding,
                                      StartObject(ctx, req.opr_bytes));
              publish_metrics(ctx, /*force=*/false);
              return wire::StartObjectReply{std::move(binding)}.to_buffer();
            });
  table.add(methods::kStopObject,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::StopObjectRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad StopObject");
              LEGION_ASSIGN_OR_RETURN(Buffer opr_bytes,
                                      StopObject(ctx, req.loid,
                                                 req.discard_state));
              publish_metrics(ctx, /*force=*/false);
              return wire::StopObjectReply{std::move(opr_bytes)}.to_buffer();
            });
  table.add(methods::kGetState,
            [this](ObjectContext& ctx, Reader&) -> Result<Buffer> {
              publish_metrics(ctx, /*force=*/false);
              return state_reply().to_buffer();
            });
  table.add(methods::kPublishMetrics,
            [this](ObjectContext& ctx, Reader&) -> Result<Buffer> {
              if (!services_.monitor.valid()) {
                return FailedPreconditionError("no monitor configured");
              }
              publish_metrics(ctx, /*force=*/true);
              return Buffer{};
            });
  table.add(methods::kGetExceptions,
            [this](ObjectContext&, Reader&) -> Result<Buffer> {
              // "Reporting object exceptions" (Section 2.3): per-object
              // counts of method invocations that ended in an error.
              Buffer out;
              Writer w(out);
              w.u32(static_cast<std::uint32_t>(objects_.size()));
              for (const auto& [loid, running] : objects_) {
                loid.Serialize(w);
                // Child-backed workers count their own exceptions in their
                // own address space; the host reports what it can see.
                w.u64(running.shell ? running.shell->exceptions() : 0);
              }
              return out;
            });
  table.add(methods::kCheckObjects,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::CheckObjectsRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad CheckObjects");
              // Which of the listed instances still run here? A child-backed
              // worker may have died (kill -9) while this host stayed
              // healthy; report it dead ONCE and reap the record so the
              // class's reactivation can land — possibly back on this very
              // host. Unknown LOIDs are not reported: the class's view may
              // simply lag a deactivation or move.
              rt::ProcessControl* pc = services_.runtime->process_control();
              wire::CheckObjectsReply reply;
              for (const Loid& loid : req.loids) {
                auto it = objects_.find(loid);
                if (it == objects_.end()) continue;
                if (!it->second.child) continue;  // in-process: record = alive
                if (pc != nullptr && pc->child_alive(it->second.endpoint)) {
                  continue;
                }
                reap_record(it);
                reply.dead.push_back(loid);
              }
              return reply.to_buffer();
            });
  table.add(methods::kSetCPULoad,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::SetLimitRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad SetCPULoad");
              max_objects_ = req.limit;
              return Buffer{};
            });
  table.add(methods::kSetMemoryUsage,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::SetLimitRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad SetMemoryUsage");
              max_memory_ = req.limit;
              return Buffer{};
            });
}

}  // namespace legion::core
