// The base class of every Legion object implementation.
//
// An ObjectImpl is the user-visible half of an active object: it registers
// wire methods, saves and restores its state (the object-mandatory
// SaveState()/RestoreState() of paper Section 2.1), and optionally supplies
// a security policy consulted as MayI() before each dispatch. The runtime
// half — endpoint, dispatch loop, binding cache — is the ActiveObject shell.
#pragma once

#include <memory>
#include <string>

#include "base/buffer.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"
#include "core/interface.hpp"
#include "core/method_table.hpp"
#include "security/policy.hpp"

namespace legion::core {

class ShellServices;

class ObjectImpl {
 public:
  virtual ~ObjectImpl() = default;

  // The registry key this implementation was instantiated under; stands in
  // for the executable name carried by an OPR (Section 3.1.1).
  [[nodiscard]] virtual std::string implementation_name() const = 0;

  // Installs this implementation's wire methods.
  virtual void RegisterMethods(MethodTable& table) = 0;

  // Object-mandatory state capture (Section 2.1). Defaults model stateless
  // objects whose OPR is "an executable file" only.
  virtual void SaveState(Writer& /*w*/) const {}
  virtual Status RestoreState(Reader& /*r*/) { return OkStatus(); }

  // The interface this implementation contributes; merged across composed
  // implementations and with the object-mandatory set by the shell.
  [[nodiscard]] virtual InterfaceDescription interface() const {
    return InterfaceDescription{implementation_name()};
  }

  // The object's MayI() policy; null means "default to empty for the case
  // of no security" (Section 2.4) — i.e. allow.
  [[nodiscard]] virtual security::PolicyPtr policy() const { return nullptr; }

  // Called once the shell is attached (self LOID, resolver, messenger are
  // available through `shell`) and state has been restored.
  virtual void OnActivate(ShellServices& /*shell*/) {}
  // Called before orderly deactivation (after the final SaveState).
  virtual void OnDeactivate() {}
};

}  // namespace legion::core
