#include "core/legion_class.hpp"

#include "core/well_known.hpp"

namespace legion::core {

namespace {
ClassDefinition MetaclassDefinition() {
  ClassDefinition def;
  def.class_id = kLegionClassClassId;
  def.name = "LegionClass";
  // New classes are minted by Derive(), not by instantiating LegionClass.
  def.flags = wire::kClassFlagAbstract;
  def.interface = ClassMandatoryInterface();
  def.superclass = LegionObjectLoid();  // "LegionClass is derived from
                                        //  LegionObject" (Section 2.1.3)
  return def;
}
}  // namespace

LegionClassImpl::LegionClassImpl() : ClassObjectImpl(MetaclassDefinition()) {}
LegionClassImpl::LegionClassImpl(ClassDefinition def)
    : ClassObjectImpl(std::move(def)) {}

void LegionClassImpl::SaveState(Writer& w) const {
  ClassObjectImpl::SaveState(w);
  w.u64(next_class_id_);
  w.u32(static_cast<std::uint32_t>(pairs_.size()));
  for (const auto& [id, creator] : pairs_) {
    w.u64(id);
    creator.Serialize(w);
  }
  w.u32(static_cast<std::uint32_t>(bindings_.size()));
  for (const auto& [id, binding] : bindings_) {
    w.u64(id);
    binding.Serialize(w);
  }
}

Status LegionClassImpl::RestoreState(Reader& r) {
  if (r.exhausted()) return OkStatus();  // fresh bootstrap instance
  LEGION_RETURN_IF_ERROR(ClassObjectImpl::RestoreState(r));
  next_class_id_ = r.u64();
  const std::uint32_t np = r.u32();
  for (std::uint32_t i = 0; i < np && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    pairs_[id] = Loid::Deserialize(r);
  }
  const std::uint32_t nb = r.u32();
  for (std::uint32_t i = 0; i < nb && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    bindings_[id] = Binding::Deserialize(r);
  }
  return r.ok() ? OkStatus() : InvalidArgumentError("bad LegionClass state");
}

void LegionClassImpl::register_class_binding(std::uint64_t class_id,
                                             Binding binding) {
  register_component(binding.loid, binding);
  bindings_[class_id] = std::move(binding);
}

void LegionClassImpl::RegisterMethods(MethodTable& table) {
  // Registered *before* the base set: MethodTable is first-wins, and these
  // override the inherited row-update behaviour with responsibility-pair
  // forwarding (magistrates report class-object moves to LegionClass, which
  // relays to the class's creator — the holder of the table row).
  for (std::string_view method :
       {methods::kReportMove, std::string_view("ReportCopy")}) {
    table.add(method, [this, method](ObjectContext& ctx,
                                     Reader& args) -> Result<Buffer> {
      auto req = wire::ReportMoveRequest::Deserialize(args);
      if (!args.ok()) return InvalidArgumentError("bad report args");
      if (TableRow* row = this->table().find(req.object)) {
        row->current_magistrates = {req.new_magistrate};
        row->address = ObjectAddress{};
        return Buffer{};
      }
      if (auto it = pairs_.find(req.object.class_id());
          it != pairs_.end() && !(it->second == ctx.shell.self())) {
        return ctx.ref(it->second).call(method, req.to_buffer());
      }
      return Buffer{};  // unknown object: reports are best-effort
    });
  }

  ClassObjectImpl::RegisterMethods(table);

  table.add(methods::kAssignClassId,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::AssignClassIdRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad AssignClassId");
              if (!req.creator.names_class_object()) {
                return InvalidArgumentError(
                    "class ids are assigned to creating class objects only");
              }
              const std::uint64_t id = next_class_id_++;
              pairs_[id] = req.creator;
              return wire::AssignClassIdReply{id}.to_buffer();
            });

  table.add(methods::kLocateClass,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad LocateClass");
              const std::uint64_t id = req.loid.class_id();

              wire::LocateClassReply reply;
              if (auto it = bindings_.find(id); it != bindings_.end()) {
                // "LegionClass simply hands out the appropriate binding
                //  which, as a class object, it is responsible for
                //  maintaining" (Section 4.1.3).
                reply.kind = wire::LocateClassReply::Kind::kBinding;
                reply.binding = it->second;
                return reply.to_buffer();
              }
              if (auto it = pairs_.find(id); it != pairs_.end()) {
                // "LegionClass can point them toward C."
                reply.kind = wire::LocateClassReply::Kind::kDelegate;
                reply.creator = it->second;
                return reply.to_buffer();
              }
              (void)ctx;
              return NotFoundError("unknown class id " + std::to_string(id));
            });

  table.add(methods::kRegisterClassBinding,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::NotifyStartedRequest::Deserialize(args);
              if (!args.ok()) {
                return InvalidArgumentError("bad RegisterClassBinding");
              }
              register_class_binding(req.loid.class_id(), req.binding);
              return Buffer{};
            });
}

}  // namespace legion::core
