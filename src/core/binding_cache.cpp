#include "core/binding_cache.hpp"

namespace legion::core {

namespace {
void Bump(obs::Counter* counter) {
  if (counter != nullptr) counter->inc();
}
}  // namespace

void BindingCache::bind_metrics(obs::Registry& registry) {
  base::MutexLock lock(mutex_);
  agg_hits_ = &registry.counter("binding_cache.hits");
  agg_misses_ = &registry.counter("binding_cache.misses");
  agg_evictions_ = &registry.counter("binding_cache.evictions");
  agg_invalidations_ = &registry.counter("binding_cache.invalidations");
}

std::uint32_t BindingCache::intern_slot(const Loid& loid) {
  const std::uint32_t id = ids_.intern(loid);
  if (slots_.size() < ids_.size()) slots_.resize(ids_.size());
  return id;
}

void BindingCache::lru_link_front(std::uint32_t id) {
  Slot& slot = slots_[id];
  slot.lru_prev = kNil;
  slot.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = id;
  lru_head_ = id;
  if (lru_tail_ == kNil) lru_tail_ = id;
}

void BindingCache::lru_unlink(std::uint32_t id) {
  Slot& slot = slots_[id];
  if (slot.lru_prev != kNil) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void BindingCache::neg_link_back(std::uint32_t id) {
  Slot& slot = slots_[id];
  slot.neg_next = kNil;
  slot.neg_prev = neg_tail_;
  if (neg_tail_ != kNil) slots_[neg_tail_].neg_next = id;
  neg_tail_ = id;
  if (neg_head_ == kNil) neg_head_ = id;
}

void BindingCache::neg_unlink(std::uint32_t id) {
  Slot& slot = slots_[id];
  if (slot.neg_prev != kNil) {
    slots_[slot.neg_prev].neg_next = slot.neg_next;
  } else {
    neg_head_ = slot.neg_next;
  }
  if (slot.neg_next != kNil) {
    slots_[slot.neg_next].neg_prev = slot.neg_prev;
  } else {
    neg_tail_ = slot.neg_prev;
  }
  slot.neg_prev = slot.neg_next = kNil;
}

void BindingCache::drop_positive(std::uint32_t id) {
  lru_unlink(id);
  Slot& slot = slots_[id];
  slot.flags &= static_cast<std::uint8_t>(~kPositive);
  slot.binding = Binding{};  // release the payload's heap state
  --size_;
}

void BindingCache::drop_negative(std::uint32_t id) {
  neg_unlink(id);
  slots_[id].flags &= static_cast<std::uint8_t>(~kNegative);
  --negative_size_;
}

void BindingCache::drop_contents() {
  ids_.clear();
  slots_.clear();
  lru_head_ = lru_tail_ = neg_head_ = neg_tail_ = kNil;
  size_ = negative_size_ = 0;
}

std::optional<Binding> BindingCache::get(const Loid& loid, SimTime now) {
  base::MutexLock lock(mutex_);
  const std::uint32_t id = ids_.find(loid);
  if (id == LoidInterner::kNoId || (slots_[id].flags & kPositive) == 0) {
    ++stats_.misses;
    Bump(agg_misses_);
    return std::nullopt;
  }
  if (slots_[id].binding.expired_at(now)) {
    // Expired entries are misses *and* are removed so they cannot be
    // resurrected by a later lookup at an earlier virtual time.
    drop_positive(id);
    ++stats_.misses;
    Bump(agg_misses_);
    return std::nullopt;
  }
  if (id != lru_head_) {
    lru_unlink(id);
    lru_link_front(id);
  }
  ++stats_.hits;
  Bump(agg_hits_);
  return slots_[id].binding;
}

void BindingCache::put_negative(const Loid& loid, SimTime expires_at) {
  base::MutexLock lock(mutex_);
  if (capacity_ == 0) return;
  const std::uint32_t id = intern_slot(loid);
  if ((slots_[id].flags & kNegative) != 0) {
    slots_[id].neg_expires = expires_at;
    return;
  }
  if (negative_size_ >= capacity_) {
    // Full: drop entries expiring no later than the incoming one; if all
    // survive, sacrifice the oldest — a negative entry only saves a
    // consult, so losing one is merely a missed optimization.
    for (std::uint32_t n = neg_head_; n != kNil;) {
      const std::uint32_t next = slots_[n].neg_next;
      if (slots_[n].neg_expires <= expires_at) drop_negative(n);
      n = next;
    }
    if (negative_size_ >= capacity_) drop_negative(neg_head_);
  }
  slots_[id].neg_expires = expires_at;
  slots_[id].flags |= kNegative;
  neg_link_back(id);
  ++negative_size_;
}

bool BindingCache::negative(const Loid& loid, SimTime now) {
  base::MutexLock lock(mutex_);
  const std::uint32_t id = ids_.find(loid);
  if (id == LoidInterner::kNoId || (slots_[id].flags & kNegative) == 0) {
    return false;
  }
  if (slots_[id].neg_expires <= now) {
    drop_negative(id);
    return false;
  }
  return true;
}

void BindingCache::put(Binding binding) {
  base::MutexLock lock(mutex_);
  if (capacity_ == 0 || !binding.valid()) return;
  const std::uint32_t id = intern_slot(binding.loid);
  if ((slots_[id].flags & kNegative) != 0) drop_negative(id);
  if ((slots_[id].flags & kPositive) != 0) {
    slots_[id].binding = std::move(binding);
    if (id != lru_head_) {
      lru_unlink(id);
      lru_link_front(id);
    }
    return;
  }
  if (size_ >= capacity_) {
    drop_positive(lru_tail_);
    ++stats_.evictions;
    Bump(agg_evictions_);
  }
  slots_[id].binding = std::move(binding);
  slots_[id].flags |= kPositive;
  lru_link_front(id);
  ++size_;
}

bool BindingCache::invalidate(const Loid& loid) {
  base::MutexLock lock(mutex_);
  const std::uint32_t id = ids_.find(loid);
  if (id == LoidInterner::kNoId) return false;
  // "Drop whatever is cached" covers both polarities.
  if ((slots_[id].flags & kNegative) != 0) drop_negative(id);
  if ((slots_[id].flags & kPositive) == 0) return false;
  drop_positive(id);
  ++stats_.invalidations;
  Bump(agg_invalidations_);
  return true;
}

bool BindingCache::invalidate_exact(const Binding& binding) {
  base::MutexLock lock(mutex_);
  const std::uint32_t id = ids_.find(binding.loid);
  if (id == LoidInterner::kNoId || (slots_[id].flags & kPositive) == 0 ||
      !(slots_[id].binding == binding)) {
    return false;
  }
  drop_positive(id);
  ++stats_.invalidations;
  Bump(agg_invalidations_);
  return true;
}

void BindingCache::clear() {
  base::MutexLock lock(mutex_);
  drop_contents();
}

bool BindingCache::consistent() const {
  base::MutexLock lock(mutex_);
  // Walk the LRU list: every node positive, back-pointers intact, count
  // matching size_ (the count guard also catches accidental cycles).
  std::size_t seen = 0;
  std::uint32_t prev = kNil;
  for (std::uint32_t id = lru_head_; id != kNil; id = slots_[id].lru_next) {
    if (seen++ > size_) return false;
    if ((slots_[id].flags & kPositive) == 0) return false;
    if (slots_[id].lru_prev != prev) return false;
    prev = id;
  }
  if (seen != size_ || lru_tail_ != prev) return false;

  seen = 0;
  prev = kNil;
  for (std::uint32_t id = neg_head_; id != kNil; id = slots_[id].neg_next) {
    if (seen++ > negative_size_) return false;
    if ((slots_[id].flags & kNegative) == 0) return false;
    if (slots_[id].neg_prev != prev) return false;
    prev = id;
  }
  if (seen != negative_size_ || neg_tail_ != prev) return false;

  // No flagged slot may be missing from its list, and populations must
  // respect capacity.
  std::size_t positives = 0, negatives = 0;
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if ((slots_[id].flags & kPositive) != 0) ++positives;
    if ((slots_[id].flags & kNegative) != 0) ++negatives;
  }
  if (positives != size_ || negatives != negative_size_) return false;
  return size_ <= capacity_ && negative_size_ <= capacity_ &&
         slots_.size() == ids_.size();
}

}  // namespace legion::core
