#include "core/binding_cache.hpp"

namespace legion::core {

namespace {
void Bump(obs::Counter* counter) {
  if (counter != nullptr) counter->inc();
}
}  // namespace

void BindingCache::bind_metrics(obs::Registry& registry) {
  std::lock_guard lock(mutex_);
  agg_hits_ = &registry.counter("binding_cache.hits");
  agg_misses_ = &registry.counter("binding_cache.misses");
  agg_evictions_ = &registry.counter("binding_cache.evictions");
  agg_invalidations_ = &registry.counter("binding_cache.invalidations");
}

void BindingCache::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
}

std::optional<Binding> BindingCache::get(const Loid& loid, SimTime now) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(loid);
  if (it == entries_.end()) {
    ++stats_.misses;
    Bump(agg_misses_);
    return std::nullopt;
  }
  if (it->second.binding.expired_at(now)) {
    // Expired entries are misses *and* are removed so they cannot be
    // resurrected by a later lookup at an earlier virtual time.
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    ++stats_.misses;
    Bump(agg_misses_);
    return std::nullopt;
  }
  touch(it->second);
  ++stats_.hits;
  Bump(agg_hits_);
  return it->second.binding;
}

void BindingCache::put_negative(const Loid& loid, SimTime expires_at) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  if (negatives_.size() >= capacity_ &&
      negatives_.find(loid) == negatives_.end()) {
    // Full: drop entries expiring no later than the incoming one; if any
    // survive, sacrifice one arbitrarily — a negative entry only saves a
    // consult, so losing one is merely a missed optimization.
    for (auto it = negatives_.begin(); it != negatives_.end();) {
      it = it->second <= expires_at ? negatives_.erase(it) : std::next(it);
    }
    if (negatives_.size() >= capacity_) negatives_.erase(negatives_.begin());
  }
  negatives_[loid] = expires_at;
}

bool BindingCache::negative(const Loid& loid, SimTime now) {
  std::lock_guard lock(mutex_);
  auto it = negatives_.find(loid);
  if (it == negatives_.end()) return false;
  if (it->second <= now) {
    negatives_.erase(it);
    return false;
  }
  return true;
}

void BindingCache::put(Binding binding) {
  if (capacity_ == 0 || !binding.valid()) return;
  std::lock_guard lock(mutex_);
  negatives_.erase(binding.loid);
  auto it = entries_.find(binding.loid);
  if (it != entries_.end()) {
    it->second.binding = std::move(binding);
    touch(it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    const Loid& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
    Bump(agg_evictions_);
  }
  lru_.push_front(binding.loid);
  entries_.emplace(binding.loid, Entry{std::move(binding), lru_.begin()});
}

bool BindingCache::invalidate(const Loid& loid) {
  std::lock_guard lock(mutex_);
  negatives_.erase(loid);  // "drop whatever is cached" covers both polarities
  auto it = entries_.find(loid);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  Bump(agg_invalidations_);
  return true;
}

bool BindingCache::invalidate_exact(const Binding& binding) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(binding.loid);
  if (it == entries_.end() || !(it->second.binding == binding)) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  Bump(agg_invalidations_);
  return true;
}

void BindingCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  lru_.clear();
  negatives_.clear();
}

bool BindingCache::consistent() const {
  std::lock_guard lock(mutex_);
  if (lru_.size() != entries_.size()) return false;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto found = entries_.find(*it);
    if (found == entries_.end()) return false;
    if (found->second.lru_pos != it) return false;
  }
  return true;
}

}  // namespace legion::core
