#include "core/binding_cache.hpp"

namespace legion::core {

void BindingCache::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
}

std::optional<Binding> BindingCache::get(const Loid& loid, SimTime now) {
  auto it = entries_.find(loid);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.binding.expired_at(now)) {
    // Expired entries are misses *and* are removed so they cannot be
    // resurrected by a later lookup at an earlier virtual time.
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  touch(it->second);
  ++stats_.hits;
  return it->second.binding;
}

void BindingCache::put(Binding binding) {
  if (capacity_ == 0 || !binding.valid()) return;
  auto it = entries_.find(binding.loid);
  if (it != entries_.end()) {
    it->second.binding = std::move(binding);
    touch(it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    const Loid& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(binding.loid);
  entries_.emplace(binding.loid, Entry{std::move(binding), lru_.begin()});
}

bool BindingCache::invalidate(const Loid& loid) {
  auto it = entries_.find(loid);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

bool BindingCache::invalidate_exact(const Binding& binding) {
  auto it = entries_.find(binding.loid);
  if (it == entries_.end() || !(it->second.binding == binding)) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

void BindingCache::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace legion::core
