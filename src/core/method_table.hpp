// Server-side method dispatch for Legion objects.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/buffer.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"

namespace legion::core {

struct ObjectContext;

// A bound member-function implementation: parses its arguments from the
// reader and returns the serialized result (or a status error, which the
// messenger marshals back to the caller).
using MethodFn = std::function<Result<Buffer>(ObjectContext&, Reader&)>;

class MethodTable {
 public:
  // First registration of a name wins: composition installs the derived
  // implementation's methods before its bases', so overrides resolve the
  // C++-like way.
  void add(std::string_view name, MethodFn fn) {
    methods_.try_emplace(std::string(name), std::move(fn));
  }

  [[nodiscard]] const MethodFn* find(std::string_view name) const {
    auto it = methods_.find(std::string(name));
    return it == methods_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return methods_.contains(std::string(name));
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(methods_.size());
    for (const auto& [name, _] : methods_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, MethodFn, std::less<>> methods_;
};

}  // namespace legion::core
