// Bindings, paper Section 3.5.
//
// "Bindings from LOID's to Object Addresses in Legion are implemented as
//  simple triples. A binding consists of an LOID, an Object Address, and a
//  field that specifies the time that the binding becomes invalid... Bindings
//  are first class entities that can be passed around the system and cached
//  within objects."
#pragma once

#include <string>

#include "base/loid.hpp"
#include "base/types.hpp"
#include "core/object_address.hpp"

namespace legion::core {

struct Binding {
  Loid loid;
  ObjectAddress address;
  // Virtual time at which the binding becomes invalid; kSimTimeNever means
  // it never explicitly expires (it can still turn out to be stale).
  SimTime expires = kSimTimeNever;

  [[nodiscard]] bool valid() const { return loid.valid() && address.valid(); }
  [[nodiscard]] bool expired_at(SimTime now) const {
    return expires != kSimTimeNever && now >= expires;
  }

  [[nodiscard]] std::string to_string() const {
    return loid.to_string() + "@" + address.to_string();
  }

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    address.Serialize(w);
    w.i64(expires);
  }
  static Binding Deserialize(Reader& r) {
    Binding b;
    b.loid = Loid::Deserialize(r);
    b.address = ObjectAddress::Deserialize(r);
    b.expires = r.i64();
    return b;
  }

  friend bool operator==(const Binding& a, const Binding& b) {
    return a.loid == b.loid && a.address == b.address && a.expires == b.expires;
  }
};

}  // namespace legion::core
