#include "core/comm.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "core/wire.hpp"

namespace legion::core {

namespace {
// Extracts the sim-transport endpoint of one Object Address element. Other
// transport types have no in-process delivery path.
Result<EndpointId> EndpointOf(const ObjectAddressElement& element) {
  if (element.type() != net::AddressType::kSim) {
    return UnavailableError("no transport for address type");
  }
  return element.sim_endpoint();
}

SimTime Elapsed(const rt::Runtime& runtime, SimTime start) {
  const SimTime now = runtime.now();
  return now > start ? now - start : 0;
}
}  // namespace

Result<Binding> Resolver::consult_binding_agent(const Loid& target,
                                                SimTime timeout_us) {
  consults_.fetch_add(1, std::memory_order_relaxed);
  obs_.consults.inc();
  const SimTime start = messenger_.runtime().now();
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kByLoid;
  req.loid = target;
  Result<Buffer> raw =
      call_binding(handles_.default_binding_agent, methods::kGetBinding,
                   req.to_buffer(), rt::EnvTriple::System(), timeout_us);
  obs_.consult_us.record(
      static_cast<std::uint64_t>(Elapsed(messenger_.runtime(), start)));
  if (!raw.ok()) return raw.status();
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(*raw));
  return reply.binding;
}

Result<Binding> Resolver::resolve(const Loid& target, SimTime timeout_us) {
  if (!target.valid()) return InvalidArgumentError("nil LOID");
  // Talking to one's own Binding Agent or to LegionClass needs no lookup:
  // their bindings are part of our persistent state.
  if (target == handles_.default_binding_agent.loid) {
    return handles_.default_binding_agent;
  }
  if (target == handles_.legion_class.loid) return handles_.legion_class;

  const SimTime now = messenger_.runtime().now();
  if (auto cached = cache_.get(target, now)) {
    obs_.cache_hits.inc();
    return *cached;
  }
  if (cache_.negative(target, now)) {
    negative_hits_.fetch_add(1, std::memory_order_relaxed);
    obs_.negative_hits.inc();
    return NotFoundError("LOID negative-cached (recent NotFound)");
  }
  return resolve_miss(target, timeout_us);
}

Result<Binding> Resolver::resolve_miss(const Loid& target,
                                       SimTime timeout_us) {
  // Singleflight: concurrent cold misses for one LOID share a single
  // Binding-Agent consult instead of stampeding it.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  bool reentrant = false;
  {
    base::MutexLock lock(flights_mutex_);
    auto it = flights_.find(target);
    if (it == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(target, flight);
      leader = true;
    } else {
      flight = it->second;
      reentrant = flight->leader == std::this_thread::get_id();
    }
  }

  if (!leader && !reentrant) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs_.coalesced.inc();
    base::MutexLock fl(flight->m);
    if (timeout_us == kSimTimeNever) {
      while (!flight->done) flight->cv.wait(flight->m);
    } else {
      // One absolute deadline across spurious wakeups.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(timeout_us);
      while (!flight->done) {
        if (flight->cv.wait_until(flight->m, deadline)) break;  // timed out
      }
      if (!flight->done) {
        return TimeoutError("coalesced binding consult timed out");
      }
    }
    return flight->result;
  }

  // Leader — or a re-entrant miss beneath our own consult (nested dispatch
  // under the leader's wait), which must consult directly: waiting on a
  // flight this thread owns would never wake.
  Result<Binding> binding = consult_binding_agent(target, timeout_us);
  if (binding.ok()) {
    cache_.put(*binding);
  } else if (binding.status().code() == StatusCode::kNotFound) {
    // A dead LOID: remember the verdict briefly so a storm of lookups does
    // not re-consult per caller.
    cache_.put_negative(target, messenger_.runtime().now() + kNegativeTtlUs);
  }
  if (leader) {
    {
      base::MutexLock lock(flights_mutex_);
      flights_.erase(target);
    }
    {
      base::MutexLock fl(flight->m);
      flight->result = binding;
      flight->done = true;
    }
    flight->cv.notify_all();
  }
  return binding;
}

Result<Binding> Resolver::refresh(const Binding& stale, SimTime timeout_us) {
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  obs_.refreshes.inc();
  const SimTime start = messenger_.runtime().now();
  cache_.invalidate_exact(stale);
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kRefresh;
  req.loid = stale.loid;
  req.stale = stale;
  Result<Buffer> raw =
      call_binding(handles_.default_binding_agent, methods::kGetBinding,
                   req.to_buffer(), rt::EnvTriple::System(), timeout_us);
  obs_.refresh_us.record(
      static_cast<std::uint64_t>(Elapsed(messenger_.runtime(), start)));
  if (!raw.ok()) return raw.status();
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(*raw));
  cache_.put(reply.binding);
  return reply.binding;
}

Result<Buffer> Resolver::call_binding(const Binding& binding,
                                      std::string_view method,
                                      const Buffer& args,
                                      const rt::EnvTriple& env,
                                      SimTime timeout_us) {
  if (!binding.valid()) return InvalidArgumentError("invalid binding");
  std::vector<std::size_t> targets;
  {
    base::MutexLock lock(rng_mutex_);
    targets = binding.address.select_targets(rng_);
  }

  // Fan out per the address semantic (Section 4.3), then take the first
  // successful reply; replicas are assumed interchangeable at this level.
  std::vector<rt::Future<rt::ReplyMsg>> futures;
  futures.reserve(targets.size());
  Status last = UnavailableError("no reachable address element");
  for (std::size_t index : targets) {
    auto endpoint = EndpointOf(binding.address.elements()[index]);
    if (!endpoint.ok()) {
      last = endpoint.status();
      continue;
    }
    futures.push_back(messenger_.invoke(*endpoint, method, args, env));
  }
  if (futures.empty()) return last;

  // One deadline is shared across the whole fan-out: a 3-replica address
  // must cost at most one caller timeout, not one per replica. The first
  // successful reply returns immediately, whichever replica it comes from;
  // losers are left to resolve (or never do) on their own and the
  // messenger drops their late replies.
  return messenger_.await_any(futures, timeout_us);
}

SimTime Resolver::backoff_delay_us(int attempt) {
  SimTime upper = kBackoffBaseUs << attempt;
  if (upper > kBackoffCapUs) upper = kBackoffCapUs;
  // Decorrelated jitter in [upper/2, upper]: never immediate, never past
  // the cap.
  base::MutexLock lock(rng_mutex_);
  return upper / 2 +
         static_cast<SimTime>(rng_.below(
             static_cast<std::uint64_t>(upper / 2) + 1));
}

Result<Buffer> Resolver::call(const Loid& target, std::string_view method,
                              Buffer args, const rt::EnvTriple& env,
                              SimTime timeout_us) {
  const SimTime start = messenger_.runtime().now();
  Status last = InternalError("unreached");
  // The stale binding is local to this invocation: concurrent (or nested,
  // via dispatch beneath an await) calls through one Resolver each thread
  // their own retry state through the loop.
  std::optional<Binding> stale;
  Result<Buffer> out = last;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Result<Binding> binding = stale.has_value()
                                  ? refresh(*stale, timeout_us)
                                  : resolve(target, timeout_us);
    if (!binding.ok()) {
      out = binding.status();
      break;
    }

    Result<Buffer> reply =
        call_binding(*binding, method, args, env, timeout_us);
    if (reply.ok()) {
      out = std::move(reply);
      break;
    }

    last = reply.status();
    out = last;
    const StatusCode code = last.code();
    // Section 4.1.4: a send that bounces (or silently times out) marks the
    // binding stale; refresh and retry. Application-level errors (NotFound,
    // PermissionDenied, ...) are returned as-is.
    if (code != StatusCode::kStaleBinding && code != StatusCode::kTimeout &&
        code != StatusCode::kUnavailable) {
      break;
    }
    stale_retries_.fetch_add(1, std::memory_order_relaxed);
    obs_.stale_retries.inc();
    stale = *binding;
    cache_.invalidate_exact(*binding);

    if (attempt + 1 < kMaxAttempts) {
      // Capped exponential backoff with jitter before the next attempt:
      // gives a failed object time to be reactivated elsewhere, and
      // decorrelates the retry bursts of many callers hitting one dead
      // host. In the sim this only advances virtual time.
      messenger_.wait([] { return false; }, backoff_delay_us(attempt));
    }
  }
  obs_.call_us.record(
      static_cast<std::uint64_t>(Elapsed(messenger_.runtime(), start)));
  return out;
}

}  // namespace legion::core
