#include "core/comm.hpp"

#include <utility>
#include <vector>

#include "core/wire.hpp"

namespace legion::core {

namespace {
// Extracts the sim-transport endpoint of one Object Address element. Other
// transport types have no in-process delivery path.
Result<EndpointId> EndpointOf(const ObjectAddressElement& element) {
  if (element.type() != net::AddressType::kSim) {
    return UnavailableError("no transport for address type");
  }
  return element.sim_endpoint();
}
}  // namespace

Result<Binding> Resolver::consult_binding_agent(const Loid& target,
                                                SimTime timeout_us) {
  ++stats_.binding_agent_consults;
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kByLoid;
  req.loid = target;
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw,
      call_binding(handles_.default_binding_agent, methods::kGetBinding,
                   req.to_buffer(), rt::EnvTriple::System(), timeout_us));
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(raw));
  return reply.binding;
}

Result<Binding> Resolver::resolve(const Loid& target, SimTime timeout_us) {
  if (!target.valid()) return InvalidArgumentError("nil LOID");
  // Talking to one's own Binding Agent or to LegionClass needs no lookup:
  // their bindings are part of our persistent state.
  if (target == handles_.default_binding_agent.loid) {
    return handles_.default_binding_agent;
  }
  if (target == handles_.legion_class.loid) return handles_.legion_class;

  if (auto cached = cache_.get(target, messenger_.runtime().now())) {
    return *cached;
  }
  LEGION_ASSIGN_OR_RETURN(Binding binding,
                          consult_binding_agent(target, timeout_us));
  cache_.put(binding);
  return binding;
}

Result<Binding> Resolver::refresh(const Binding& stale, SimTime timeout_us) {
  ++stats_.refreshes;
  cache_.invalidate_exact(stale);
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kRefresh;
  req.loid = stale.loid;
  req.stale = stale;
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw,
      call_binding(handles_.default_binding_agent, methods::kGetBinding,
                   req.to_buffer(), rt::EnvTriple::System(), timeout_us));
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(raw));
  cache_.put(reply.binding);
  return reply.binding;
}

Result<Buffer> Resolver::call_binding(const Binding& binding,
                                      std::string_view method,
                                      const Buffer& args,
                                      const rt::EnvTriple& env,
                                      SimTime timeout_us) {
  if (!binding.valid()) return InvalidArgumentError("invalid binding");
  const std::vector<std::size_t> targets = binding.address.select_targets(rng_);

  // Fan out per the address semantic (Section 4.3), then take the first
  // successful reply; replicas are assumed interchangeable at this level.
  std::vector<rt::Future<rt::ReplyMsg>> futures;
  futures.reserve(targets.size());
  Status last = UnavailableError("no reachable address element");
  for (std::size_t index : targets) {
    auto endpoint = EndpointOf(binding.address.elements()[index]);
    if (!endpoint.ok()) {
      last = endpoint.status();
      continue;
    }
    futures.push_back(messenger_.invoke(*endpoint, method, args, env));
  }
  if (futures.empty()) return last;

  Result<Buffer> best = last;
  bool any_ok = false;
  for (auto& future : futures) {
    Result<Buffer> reply = messenger_.await(std::move(future), timeout_us);
    if (reply.ok() && !any_ok) {
      best = std::move(reply);
      any_ok = true;
    } else if (!reply.ok() && !any_ok) {
      best = reply.status();
    }
  }
  return best;
}

Result<Buffer> Resolver::call(const Loid& target, std::string_view method,
                              Buffer args, const rt::EnvTriple& env,
                              SimTime timeout_us) {
  Status last = InternalError("unreached");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Result<Binding> binding =
        attempt == 0 ? resolve(target, timeout_us)
                     : Result<Binding>(NotFoundError("refresh path"));
    if (attempt > 0) {
      // We arrive here only after a failed send: last_binding_ holds the
      // stale one and refresh() consults the Binding Agent's refresh path.
      binding = refresh(last_stale_, timeout_us);
    }
    if (!binding.ok()) return binding.status();

    Result<Buffer> reply =
        call_binding(*binding, method, args, env, timeout_us);
    if (reply.ok()) return reply;

    last = reply.status();
    const StatusCode code = last.code();
    // Section 4.1.4: a send that bounces (or silently times out) marks the
    // binding stale; refresh and retry. Application-level errors (NotFound,
    // PermissionDenied, ...) are returned as-is.
    if (code != StatusCode::kStaleBinding && code != StatusCode::kTimeout &&
        code != StatusCode::kUnavailable) {
      return last;
    }
    ++stats_.stale_retries;
    last_stale_ = *binding;
    cache_.invalidate_exact(*binding);
  }
  return last;
}

}  // namespace legion::core
