#include "core/magistrate.hpp"

#include <algorithm>
#include <utility>

#include "core/active_object.hpp"
#include "core/well_known.hpp"
#include "persist/opr.hpp"

namespace legion::core {

MagistrateImpl::MagistrateImpl(MagistrateConfig config)
    : config_(std::move(config)),
      placement_(sched::MakePolicy(config_.placement_policy)) {
  if (!placement_) placement_ = sched::MakePolicy("round-robin");
}

namespace {
// Defers to the magistrate's policy slot at call time, so set_policy takes
// effect without rebuilding the shell's composed policy.
class LivePolicy final : public security::SecurityPolicy {
 public:
  explicit LivePolicy(const security::PolicyPtr* slot) : slot_(slot) {}
  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple& env) const override {
    return *slot_ ? (*slot_)->MayI(method, env) : OkStatus();
  }
  [[nodiscard]] std::string name() const override { return "live"; }

 private:
  const security::PolicyPtr* slot_;
};
}  // namespace

security::PolicyPtr MagistrateImpl::policy() const {
  return std::make_shared<LivePolicy>(&config_.policy);
}

Result<sched::HostCandidate> MagistrateImpl::host_state(
    ObjectContext& ctx, const Loid& host_object) {
  auto it = host_states_.find(host_object);
  if (it != host_states_.end() &&
      ctx.shell.now() - it->second.fetched_at < config_.host_state_ttl_us) {
    return it->second.candidate;
  }
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          ctx.ref(host_object).call(methods::kGetState, Buffer{}));
  LEGION_ASSIGN_OR_RETURN(wire::HostStateReply reply,
                          wire::HostStateReply::from_buffer(raw));
  sched::HostCandidate candidate;
  candidate.host_object = host_object;
  candidate.cpu_load = reply.cpu_load;
  candidate.active_objects = reply.active_objects;
  candidate.capacity = reply.capacity;
  candidate.accepting = reply.accepting;
  host_states_[host_object] = CachedHostState{candidate, ctx.shell.now()};
  return candidate;
}

Result<Loid> MagistrateImpl::pick_host(ObjectContext& ctx,
                                       const Loid& suggested_host,
                                       const std::vector<Loid>& exclude) {
  if (hosts_.empty()) {
    return FailedPreconditionError("jurisdiction has no hosts");
  }
  auto excluded = [&](const Loid& h) {
    for (const Loid& e : exclude) {
      if (e == h) return true;
    }
    return false;
  };
  if (suggested_host.valid()) {
    // The Activate(LOID, LOID) overload: "allow a Scheduling Agent (or any
    // other Legion object) to provide suggestions about where to run the
    // object" — honoured when the host belongs to this jurisdiction.
    for (const Loid& h : hosts_) {
      if (h == suggested_host && !excluded(h)) return suggested_host;
    }
    return FailedPreconditionError("suggested host not in this jurisdiction");
  }
  std::vector<sched::HostCandidate> candidates;
  candidates.reserve(hosts_.size());
  for (const Loid& h : hosts_) {
    if (excluded(h)) continue;
    auto state = host_state(ctx, h);
    if (state.ok()) candidates.push_back(*state);
  }
  const std::size_t pick = placement_->pick(candidates, ctx.shell.rng());
  if (pick >= candidates.size()) {
    return ResourceExhaustedError("no accepting host in jurisdiction");
  }
  return candidates[pick].host_object;
}

Binding MagistrateImpl::make_binding(ObjectContext& ctx, const Loid& loid,
                                     const ObjectAddress& address) const {
  return Binding{loid, address,
                 config_.binding_ttl_us == kSimTimeNever
                     ? kSimTimeNever
                     : ctx.shell.now() + config_.binding_ttl_us};
}

wire::PlacementReply MagistrateImpl::placement_reply(
    ObjectContext& ctx, const Loid& loid, const ActiveRecord& record) const {
  wire::PlacementReply out;
  out.binding = make_binding(ctx, loid, record.address);
  if (!record.host_objects.empty()) out.host = record.host_objects.front();
  if (auto it = checkpoints_.find(loid); it != checkpoints_.end()) {
    out.checkpoint_disk = it->second.disk.value;
    out.checkpoint_path = it->second.path;
  }
  return out;
}

Result<wire::PlacementReply> MagistrateImpl::Activate(
    ObjectContext& ctx, const Loid& loid, const Loid& suggested_host) {
  if (auto it = active_.find(loid); it != active_.end()) {
    // "causes it to become a running process ... if the object isn't
    //  already Active."
    return placement_reply(ctx, loid, it->second);
  }
  auto inert_it = inert_.find(loid);
  if (inert_it == inert_.end()) {
    return NotFoundError("magistrate does not manage " + loid.to_string());
  }
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr, vaults_.load(inert_it->second));
  // Process-backed objects ship a v2 OPR naming their recovery checkpoint
  // (the address the retained copy below lives at); in-process OPRs keep
  // their v1 bytes untouched.
  if (!opr.executable.empty()) opr.checkpoint = inert_it->second;

  LEGION_ASSIGN_OR_RETURN(Loid host, pick_host(ctx, suggested_host));
  wire::StartObjectRequest start{opr.to_bytes()};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw, ctx.ref(host).call(methods::kStartObject, start.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::StartObjectReply reply,
                          wire::StartObjectReply::from_buffer(raw));

  ++stats_.activations;
  host_states_.erase(host);  // its load just changed
  active_[loid] = ActiveRecord{reply.binding.address, {host},
                               opr.implementation, opr.executable};
  // The on-disk OPR is retained as the object's recovery checkpoint: if the
  // host dies, Reactivate restarts the object from here (the live process
  // holds the only newer state, and it dies with the host).
  checkpoints_[loid] = inert_it->second;
  inert_.erase(inert_it);
  return placement_reply(ctx, loid, active_.at(loid));
}

Result<wire::PlacementReply> MagistrateImpl::Reactivate(
    ObjectContext& ctx, const wire::ReactivateRequest& req) {
  // An Inert object has nothing running to lose: a plain activation, with
  // the dead host excluded via the suggestion check below.
  if (!active_.contains(req.loid) && inert_.contains(req.loid)) {
    const Loid suggestion =
        req.suggested_host == req.dead_host ? Loid{} : req.suggested_host;
    return Activate(ctx, req.loid, suggestion);
  }
  auto ck = checkpoints_.find(req.loid);
  if (ck == checkpoints_.end()) {
    return NotFoundError("no checkpoint for " + req.loid.to_string());
  }
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr, vaults_.load(ck->second));
  if (!opr.executable.empty()) opr.checkpoint = ck->second;

  std::vector<Loid> exclude;
  if (req.dead_host.valid()) exclude.push_back(req.dead_host);
  const Loid suggestion =
      req.suggested_host == req.dead_host ? Loid{} : req.suggested_host;
  LEGION_ASSIGN_OR_RETURN(Loid host, pick_host(ctx, suggestion, exclude));

  wire::StartObjectRequest start{opr.to_bytes()};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw, ctx.ref(host).call(methods::kStartObject, start.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::StartObjectReply reply,
                          wire::StartObjectReply::from_buffer(raw));

  ++stats_.reactivations;
  host_states_.erase(host);
  // Overwrite the stale record: the old process, if it still exists on the
  // unreachable host, is fenced by the class object once the host answers
  // probes again. The checkpoint address is unchanged — the restarted
  // process begins from exactly that state.
  active_[req.loid] = ActiveRecord{reply.binding.address, {host},
                                   opr.implementation, opr.executable};
  return placement_reply(ctx, req.loid, active_.at(req.loid));
}

Result<wire::PlacementReply> MagistrateImpl::Checkpoint(ObjectContext& ctx,
                                                        const Loid& loid) {
  auto it = active_.find(loid);
  if (it == active_.end()) {
    if (auto inert_it = inert_.find(loid); inert_it != inert_.end()) {
      // Inert: the stored OPR already is the current state.
      wire::PlacementReply out;
      out.binding = Binding{loid, ObjectAddress{}, kSimTimeNever};
      out.checkpoint_disk = inert_it->second.disk.value;
      out.checkpoint_path = inert_it->second.path;
      return out;
    }
    return NotFoundError("magistrate does not manage " + loid.to_string());
  }
  // Capture the live state through the object's own endpoint (like
  // StopObject does), but leave the process running.
  Binding live{loid, it->second.address, kSimTimeNever};
  LEGION_ASSIGN_OR_RETURN(
      Buffer state,
      ctx.shell.resolver().call_binding(live, methods::kSaveState, Buffer{},
                                        ctx.outgoing_env(),
                                        rt::Messenger::kDefaultTimeoutUs));
  persist::Opr opr;
  opr.loid = loid;
  opr.implementation = it->second.impl_spec;
  opr.executable = it->second.executable;
  opr.state = std::move(state);

  auto ck = checkpoints_.find(loid);
  if (ck != checkpoints_.end()) {
    // Refresh in place so the published checkpoint address stays stable.
    if (!opr.executable.empty()) opr.checkpoint = ck->second;
    persist::Vault* v = vaults_.vault(ck->second.disk);
    if (v == nullptr) return InternalError("checkpoint vault disappeared");
    LEGION_RETURN_IF_ERROR(v->write(ck->second.path, opr.to_bytes()));
  } else {
    LEGION_ASSIGN_OR_RETURN(persist::PersistentAddress addr,
                            vaults_.store(opr));
    if (!opr.executable.empty()) {
      // A process-backed OPR is self-describing: rewrite it to carry its own
      // vault address, so shipping the bytes alone suffices to revive.
      opr.checkpoint = addr;
      persist::Vault* v = vaults_.vault(addr.disk);
      if (v == nullptr) return InternalError("checkpoint vault disappeared");
      LEGION_RETURN_IF_ERROR(v->write(addr.path, opr.to_bytes()));
    }
    ck = checkpoints_.emplace(loid, addr).first;
  }
  ++stats_.checkpoints;
  return placement_reply(ctx, loid, it->second);
}

Status MagistrateImpl::Deactivate(ObjectContext& ctx, const Loid& loid) {
  auto it = active_.find(loid);
  if (it == active_.end()) {
    return inert_.contains(loid)
               ? OkStatus()  // already Inert
               : NotFoundError("magistrate does not manage " + loid.to_string());
  }
  // The first replica's state becomes the OPR; further replicas of a
  // replicated object (Section 4.3) are assumed interchangeable and are
  // simply reaped.
  Buffer kept_opr;
  for (std::size_t i = 0; i < it->second.host_objects.size(); ++i) {
    const Loid& host = it->second.host_objects[i];
    wire::StopObjectRequest stop{loid, /*discard_state=*/i != 0};
    LEGION_ASSIGN_OR_RETURN(
        Buffer raw, ctx.ref(host).call(methods::kStopObject, stop.to_buffer()));
    if (i == 0) {
      LEGION_ASSIGN_OR_RETURN(wire::StopObjectReply reply,
                              wire::StopObjectReply::from_buffer(raw));
      kept_opr = std::move(reply.opr_bytes);
    }
    host_states_.erase(host);
  }
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr, persist::Opr::from_bytes(kept_opr));
  LEGION_ASSIGN_OR_RETURN(persist::PersistentAddress addr, vaults_.store(opr));
  // The fresh OPR supersedes the recovery checkpoint taken at activation.
  if (auto ck = checkpoints_.find(loid); ck != checkpoints_.end()) {
    (void)vaults_.remove(ck->second);
    checkpoints_.erase(ck);
  }
  ++stats_.deactivations;
  inert_[loid] = addr;
  active_.erase(it);
  return OkStatus();
}

Status MagistrateImpl::Delete(ObjectContext& ctx, const Loid& loid) {
  // "Both Active and Inert copies of the object are removed from the
  //  system" (Section 3.8).
  bool found = false;
  if (auto it = active_.find(loid); it != active_.end()) {
    for (const Loid& host : it->second.host_objects) {
      wire::StopObjectRequest stop{loid, /*discard_state=*/true};
      (void)ctx.ref(host).call(methods::kStopObject, stop.to_buffer());
      host_states_.erase(host);
    }
    active_.erase(it);
    found = true;
  }
  if (auto it = inert_.find(loid); it != inert_.end()) {
    (void)vaults_.remove(it->second);
    inert_.erase(it);
    found = true;
  }
  if (auto ck = checkpoints_.find(loid); ck != checkpoints_.end()) {
    (void)vaults_.remove(ck->second);
    checkpoints_.erase(ck);
  }
  if (!found) {
    return NotFoundError("magistrate does not manage " + loid.to_string());
  }
  ++stats_.deletions;
  return OkStatus();
}

Result<Buffer> MagistrateImpl::capture_opr(ObjectContext& ctx,
                                           const Loid& loid) {
  // Copy/Move "causes the Magistrate to deactivate the object, creating an
  // Object Persistent Representation" (Section 3.8).
  if (active_.contains(loid)) {
    LEGION_RETURN_IF_ERROR(Deactivate(ctx, loid));
  }
  auto it = inert_.find(loid);
  if (it == inert_.end()) {
    return NotFoundError("magistrate does not manage " + loid.to_string());
  }
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr, vaults_.load(it->second));
  return opr.to_bytes();
}

void MagistrateImpl::notify_class(ObjectContext& ctx, std::string_view method,
                                  const Loid& object,
                                  const Loid& other_magistrate) {
  // Best-effort: classes also learn lazily via GetBinding refreshes. For a
  // migrated *class object* the responsible-class trick would name the
  // object itself; route through LegionClass, which forwards to the
  // creator holding the table row (Section 4.1.3).
  const Loid target = object.names_class_object()
                          ? ctx.shell.handles().legion_class.loid
                          : object.responsible_class();
  wire::ReportMoveRequest report{object, other_magistrate};
  (void)ctx.ref(target).call(method, report.to_buffer());
}

Status MagistrateImpl::Copy(ObjectContext& ctx, const Loid& loid,
                            const Loid& dest) {
  LEGION_ASSIGN_OR_RETURN(Buffer opr_bytes, capture_opr(ctx, loid));
  wire::ReceiveOprRequest req{std::move(opr_bytes)};
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          ctx.ref(dest).call(methods::kReceiveOpr, req.to_buffer()));
  (void)raw;
  ++stats_.copies;
  notify_class(ctx, "ReportCopy", loid, dest);
  return OkStatus();
}

Status MagistrateImpl::Move(ObjectContext& ctx, const Loid& loid,
                            const Loid& dest) {
  // "Move() is equivalent to Copy() then Delete(). It serves to change the
  //  Magistrate that manages a given object."
  if (dest == ctx.shell.self()) {
    return manages(loid)
               ? OkStatus()  // already here
               : NotFoundError("magistrate does not manage " + loid.to_string());
  }
  LEGION_ASSIGN_OR_RETURN(Buffer opr_bytes, capture_opr(ctx, loid));
  wire::ReceiveOprRequest req{std::move(opr_bytes)};
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          ctx.ref(dest).call(methods::kReceiveOpr, req.to_buffer()));
  (void)raw;
  if (auto it = inert_.find(loid); it != inert_.end()) {
    (void)vaults_.remove(it->second);
    inert_.erase(it);
  }
  ++stats_.moves;
  notify_class(ctx, std::string(methods::kReportMove), loid, dest);
  return OkStatus();
}

Result<std::uint32_t> MagistrateImpl::Split(ObjectContext& ctx,
                                            const Loid& dest) {
  if (dest == ctx.shell.self()) {
    return InvalidArgumentError("cannot split a jurisdiction onto itself");
  }
  // Snapshot the managed set first: Move() mutates both maps.
  std::vector<Loid> managed;
  managed.reserve(active_.size() + inert_.size());
  for (const auto& [loid, _] : active_) managed.push_back(loid);
  for (const auto& [loid, _] : inert_) managed.push_back(loid);
  std::sort(managed.begin(), managed.end());

  std::uint32_t moved = 0;
  for (std::size_t i = 0; i < managed.size(); ++i) {
    if (i % 2 != 0) continue;  // keep half, hand off half
    const Status st = Move(ctx, managed[i], dest);
    if (st.ok()) ++moved;
  }
  return moved;
}

Result<wire::PlacementReply> MagistrateImpl::StoreNew(
    ObjectContext& ctx, const wire::StoreNewRequest& req) {
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr,
                          persist::Opr::from_bytes(req.opr_bytes));
  if (active_.contains(opr.loid) || inert_.contains(opr.loid)) {
    return AlreadyExistsError("already managing " + opr.loid.to_string());
  }
  LEGION_ASSIGN_OR_RETURN(persist::PersistentAddress addr, vaults_.store(opr));
  inert_[opr.loid] = addr;
  ++stats_.received;
  return Activate(ctx, opr.loid, req.suggested_host);
}

Result<Binding> MagistrateImpl::StoreNewReplicated(
    ObjectContext& ctx, const wire::StoreNewReplicatedRequest& req) {
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr,
                          persist::Opr::from_bytes(req.opr_bytes));
  if (active_.contains(opr.loid) || inert_.contains(opr.loid)) {
    return AlreadyExistsError("already managing " + opr.loid.to_string());
  }
  if (req.replicas == 0) return InvalidArgumentError("zero replicas");
  if (req.replicas > hosts_.size()) {
    return ResourceExhaustedError(
        "replication needs one distinct host per replica");
  }

  // "Replicating an object at the Legion level is a matter of creating an
  //  Object Address with multiple physical addresses in its list, assigning
  //  the address semantic appropriately, and binding the LOID of the object
  //  to this Object Address" (Section 4.3).
  std::vector<ObjectAddressElement> elements;
  std::vector<Loid> used_hosts;
  for (std::uint32_t i = 0; i < req.replicas; ++i) {
    LEGION_ASSIGN_OR_RETURN(Loid host, pick_host(ctx, Loid{}, used_hosts));
    wire::StartObjectRequest start{opr.to_bytes()};
    LEGION_ASSIGN_OR_RETURN(
        Buffer raw, ctx.ref(host).call(methods::kStartObject, start.to_buffer()));
    LEGION_ASSIGN_OR_RETURN(wire::StartObjectReply reply,
                            wire::StartObjectReply::from_buffer(raw));
    for (const auto& element : reply.binding.address.elements()) {
      elements.push_back(element);
    }
    used_hosts.push_back(host);
    host_states_.erase(host);
  }
  ObjectAddress combined{std::move(elements),
                         static_cast<AddressSemantic>(req.semantic), req.k};
  active_[opr.loid] = ActiveRecord{combined, std::move(used_hosts),
                                   opr.implementation, opr.executable};
  ++stats_.activations;
  ++stats_.received;
  return Binding{opr.loid, std::move(combined),
                 config_.binding_ttl_us == kSimTimeNever
                     ? kSimTimeNever
                     : ctx.shell.now() + config_.binding_ttl_us};
}

Result<Binding> MagistrateImpl::Heal(ObjectContext& ctx, const Loid& loid) {
  auto it = active_.find(loid);
  if (it == active_.end()) {
    return NotFoundError("magistrate has no active record for " +
                         loid.to_string());
  }
  ActiveRecord& record = it->second;
  const auto& elements = record.address.elements();
  if (elements.size() != record.host_objects.size()) {
    return InternalError("replica bookkeeping out of sync");
  }

  // Probe every replica with a short Ping.
  std::vector<bool> alive(elements.size(), false);
  std::size_t survivor = elements.size();
  for (std::size_t i = 0; i < elements.size(); ++i) {
    Binding single{loid, ObjectAddress{elements[i]}, kSimTimeNever};
    alive[i] = ctx.shell.resolver()
                   .call_binding(single, methods::kPing, Buffer{},
                                 ctx.outgoing_env(), 200'000)
                   .ok();
    if (alive[i] && survivor == elements.size()) survivor = i;
  }
  if (survivor == elements.size()) {
    return UnavailableError("no live replica to heal from");
  }

  // Capture the survivor's state once; restart every dead replica from it.
  Binding survivor_binding{loid, ObjectAddress{elements[survivor]},
                           kSimTimeNever};
  LEGION_ASSIGN_OR_RETURN(
      Buffer state,
      ctx.shell.resolver().call_binding(survivor_binding, methods::kSaveState,
                                        Buffer{}, ctx.outgoing_env(),
                                        rt::Messenger::kDefaultTimeoutUs));

  std::vector<ObjectAddressElement> healed_elements;
  std::vector<Loid> healed_hosts;
  std::vector<Loid> occupied;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (alive[i]) occupied.push_back(record.host_objects[i]);
  }
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (alive[i]) {
      healed_elements.push_back(elements[i]);
      healed_hosts.push_back(record.host_objects[i]);
      continue;
    }
    persist::Opr opr;
    opr.loid = loid;
    opr.implementation = record.impl_spec;
    opr.executable = record.executable;
    opr.state = state;
    LEGION_ASSIGN_OR_RETURN(Loid host, pick_host(ctx, Loid{}, occupied));
    wire::StartObjectRequest start{opr.to_bytes()};
    LEGION_ASSIGN_OR_RETURN(
        Buffer raw, ctx.ref(host).call(methods::kStartObject, start.to_buffer()));
    LEGION_ASSIGN_OR_RETURN(wire::StartObjectReply reply,
                            wire::StartObjectReply::from_buffer(raw));
    for (const auto& element : reply.binding.address.elements()) {
      healed_elements.push_back(element);
    }
    healed_hosts.push_back(host);
    occupied.push_back(host);
    host_states_.erase(host);
  }

  record.address = ObjectAddress{std::move(healed_elements),
                                 record.address.semantic(),
                                 record.address.k()};
  record.host_objects = std::move(healed_hosts);
  return Binding{loid, record.address,
                 config_.binding_ttl_us == kSimTimeNever
                     ? kSimTimeNever
                     : ctx.shell.now() + config_.binding_ttl_us};
}

Status MagistrateImpl::ReceiveOpr(ObjectContext& ctx, const Buffer& opr_bytes) {
  (void)ctx;
  LEGION_ASSIGN_OR_RETURN(persist::Opr opr, persist::Opr::from_bytes(opr_bytes));
  LEGION_ASSIGN_OR_RETURN(persist::PersistentAddress addr, vaults_.store(opr));
  inert_[opr.loid] = addr;
  ++stats_.received;
  return OkStatus();
}

Result<Buffer> MagistrateImpl::forward_to_subs(ObjectContext& ctx,
                                               std::string_view method,
                                               const Buffer& args) {
  Status last = NotFoundError("no sub-magistrate manages the object");
  for (const Loid& sub : sub_magistrates_) {
    Result<Buffer> reply = ctx.ref(sub).call(method, args);
    if (reply.ok()) return reply;
    last = reply.status();
    if (last.code() != StatusCode::kNotFound) break;  // real failure: stop
  }
  return last;
}

void MagistrateImpl::RegisterMethods(MethodTable& table) {
  // The lifecycle verbs fall through to adopted sub-magistrates when this
  // magistrate does not manage the object itself (Section 2.2 hierarchies).
  auto with_fallthrough = [this](std::string_view method, auto local_op) {
    return [this, method, local_op](ObjectContext& ctx,
                                    Reader& args) -> Result<Buffer> {
      Buffer raw = args.remainder();
      Reader local(raw);
      Result<Buffer> result = local_op(ctx, local);
      if (!result.ok() && result.status().code() == StatusCode::kNotFound &&
          !sub_magistrates_.empty()) {
        return forward_to_subs(ctx, method, raw);
      }
      return result;
    };
  };

  table.add(methods::kActivate,
            with_fallthrough(methods::kActivate,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::ActivateRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Activate");
              // PlacementReply serializes its Binding first, so callers that
              // only want a BindingReply still parse this.
              LEGION_ASSIGN_OR_RETURN(
                  wire::PlacementReply reply,
                  Activate(ctx, req.loid, req.suggested_host));
              return reply.to_buffer();
            }));
  table.add(methods::kReactivate,
            with_fallthrough(methods::kReactivate,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::ReactivateRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Reactivate");
              LEGION_ASSIGN_OR_RETURN(wire::PlacementReply reply,
                                      Reactivate(ctx, req));
              return reply.to_buffer();
            }));
  table.add(methods::kCheckpoint,
            with_fallthrough(methods::kCheckpoint,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Checkpoint");
              LEGION_ASSIGN_OR_RETURN(wire::PlacementReply reply,
                                      Checkpoint(ctx, req.loid));
              return reply.to_buffer();
            }));
  table.add(methods::kDeactivate,
            with_fallthrough(methods::kDeactivate,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Deactivate");
              LEGION_RETURN_IF_ERROR(Deactivate(ctx, req.loid));
              return Buffer{};
            }));
  table.add(methods::kDelete,
            with_fallthrough(methods::kDelete,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Delete");
              LEGION_RETURN_IF_ERROR(Delete(ctx, req.loid));
              return Buffer{};
            }));
  table.add(methods::kCopy,
            with_fallthrough(methods::kCopy,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::TransferRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Copy");
              LEGION_RETURN_IF_ERROR(Copy(ctx, req.object, req.dest_magistrate));
              return Buffer{};
            }));
  table.add(methods::kMove,
            with_fallthrough(methods::kMove,
                             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::TransferRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Move");
              LEGION_RETURN_IF_ERROR(Move(ctx, req.object, req.dest_magistrate));
              return Buffer{};
            }));
  table.add(methods::kStoreNew,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::StoreNewRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad StoreNew");
              if (hosts_.empty() && !sub_magistrates_.empty()) {
                // A pure "front" magistrate: delegate placement to a sub.
                const Loid sub =
                    sub_magistrates_[sub_rr_++ % sub_magistrates_.size()];
                return ctx.ref(sub).call(methods::kStoreNew, req.to_buffer());
              }
              LEGION_ASSIGN_OR_RETURN(wire::PlacementReply reply,
                                      StoreNew(ctx, req));
              return reply.to_buffer();
            });
  table.add(methods::kHeal,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Heal");
              LEGION_ASSIGN_OR_RETURN(Binding binding, Heal(ctx, req.loid));
              return wire::BindingReply{std::move(binding)}.to_buffer();
            });
  table.add(methods::kAdoptMagistrate,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Adopt");
              if (req.loid == ctx.shell.self()) {
                return InvalidArgumentError("cannot adopt oneself");
              }
              adopt_magistrate(req.loid);
              return Buffer{};
            });
  table.add(methods::kStoreNewReplicated,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::StoreNewReplicatedRequest::Deserialize(args);
              if (!args.ok()) {
                return InvalidArgumentError("bad StoreNewReplicated");
              }
              LEGION_ASSIGN_OR_RETURN(Binding binding,
                                      StoreNewReplicated(ctx, req));
              return wire::BindingReply{std::move(binding)}.to_buffer();
            });
  table.add(methods::kSplit,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Split");
              LEGION_ASSIGN_OR_RETURN(std::uint32_t moved,
                                      Split(ctx, req.loid));
              Buffer out;
              Writer w(out);
              w.u32(moved);
              return out;
            });
  table.add(methods::kListHosts,
            [this](ObjectContext&, Reader&) -> Result<Buffer> {
              // Scheduling Agents enumerate the jurisdiction's Host Objects
              // before making placement suggestions (Section 3.7 hook).
              return wire::LoidListReply{hosts_}.to_buffer();
            });
  table.add(methods::kReceiveOpr,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::ReceiveOprRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad ReceiveOpr");
              LEGION_RETURN_IF_ERROR(ReceiveOpr(ctx, req.opr_bytes));
              return Buffer{};
            });
}

}  // namespace legion::core
