// Well-known identifiers of the Legion core.
//
// LegionClass hands out class identifiers (paper Section 3.2); the core
// Abstract classes of Section 2.1.3 receive the first few at bootstrap, in a
// fixed order so that their LOIDs are stable across every Legion instance.
#pragma once

#include <cstdint>
#include <string_view>

#include "base/loid.hpp"

namespace legion::core {

// Class identifiers of the core Abstract classes (Section 2.1.3).
inline constexpr std::uint64_t kLegionObjectClassId = 1;
inline constexpr std::uint64_t kLegionClassClassId = 2;
inline constexpr std::uint64_t kLegionHostClassId = 3;
inline constexpr std::uint64_t kLegionMagistrateClassId = 4;
inline constexpr std::uint64_t kLegionBindingAgentClassId = 5;
inline constexpr std::uint64_t kLegionContextClassId = 6;
// The fleet metrics monitor (observability plane, not in the paper): one
// well-known instance every Host Object ships its metric snapshots to.
inline constexpr std::uint64_t kLegionMonitorClassId = 7;
// Class identifiers below this are reserved for the core.
inline constexpr std::uint64_t kFirstUserClassId = 64;

[[nodiscard]] inline Loid LegionObjectLoid() {
  return Loid::ForClass(kLegionObjectClassId);
}
[[nodiscard]] inline Loid LegionClassLoid() {
  return Loid::ForClass(kLegionClassClassId);
}
[[nodiscard]] inline Loid LegionHostLoid() {
  return Loid::ForClass(kLegionHostClassId);
}
[[nodiscard]] inline Loid LegionMagistrateLoid() {
  return Loid::ForClass(kLegionMagistrateClassId);
}
[[nodiscard]] inline Loid LegionBindingAgentLoid() {
  return Loid::ForClass(kLegionBindingAgentClassId);
}
[[nodiscard]] inline Loid LegionContextLoid() {
  return Loid::ForClass(kLegionContextClassId);
}
[[nodiscard]] inline Loid LegionMonitorLoid() {
  return Loid::ForClass(kLegionMonitorClassId);
}

// --- Method names -----------------------------------------------------------
namespace methods {

// Object-mandatory (Section 2.1): exported by every Legion object.
inline constexpr std::string_view kPing = "Ping";
inline constexpr std::string_view kIam = "Iam";
inline constexpr std::string_view kMayI = "MayI";
inline constexpr std::string_view kGetInterface = "GetInterface";
inline constexpr std::string_view kSaveState = "SaveState";

// Class-mandatory (Section 3.7).
inline constexpr std::string_view kCreate = "Create";
inline constexpr std::string_view kDerive = "Derive";
inline constexpr std::string_view kInheritFrom = "InheritFrom";
inline constexpr std::string_view kDelete = "Delete";
inline constexpr std::string_view kGetBinding = "GetBinding";
inline constexpr std::string_view kClone = "Clone";        // Section 5.2.2
inline constexpr std::string_view kReportMove = "ReportMove";
inline constexpr std::string_view kMoveInstance = "MoveInstance";
inline constexpr std::string_view kListInstances = "ListInstances";
// Failure detection (Section 4.1.4's fan-out closed into a loop): probe the
// Host Objects of every placed instance, reactivate off suspect hosts.
inline constexpr std::string_view kSweepInstances = "SweepInstances";
inline constexpr std::string_view kSetRecoveryPolicy = "SetRecoveryPolicy";

// LegionClass metaclass (Section 4.1.3).
inline constexpr std::string_view kAssignClassId = "AssignClassId";
inline constexpr std::string_view kLocateClass = "LocateClass";
inline constexpr std::string_view kRegisterClassBinding = "RegisterClassBinding";

// Binding Agents (Section 3.6).
inline constexpr std::string_view kAddBinding = "AddBinding";
inline constexpr std::string_view kInvalidateBinding = "InvalidateBinding";

// Magistrates (Section 3.8).
inline constexpr std::string_view kActivate = "Activate";
inline constexpr std::string_view kDeactivate = "Deactivate";
inline constexpr std::string_view kCopy = "Copy";
inline constexpr std::string_view kMove = "Move";
inline constexpr std::string_view kStoreNew = "StoreNew";
inline constexpr std::string_view kStoreNewReplicated = "StoreNewReplicated";
inline constexpr std::string_view kCreateReplicated = "CreateReplicated";
inline constexpr std::string_view kReceiveOpr = "ReceiveOpr";
inline constexpr std::string_view kListHosts = "ListHosts";
inline constexpr std::string_view kSplit = "Split";
inline constexpr std::string_view kAdoptMagistrate = "AdoptMagistrate";
inline constexpr std::string_view kHeal = "Heal";
inline constexpr std::string_view kReactivate = "Reactivate";
inline constexpr std::string_view kCheckpoint = "Checkpoint";

// Scheduling Agents (the Section 3.7 hook).
inline constexpr std::string_view kSuggestHost = "SuggestHost";
inline constexpr std::string_view kSetSchedulingAgent = "SetSchedulingAgent";

// Host Objects (Section 3.9).
inline constexpr std::string_view kStartObject = "StartObject";
inline constexpr std::string_view kStopObject = "StopObject";
inline constexpr std::string_view kGetState = "GetState";
inline constexpr std::string_view kSetCPULoad = "SetCPULoad";
inline constexpr std::string_view kSetMemoryUsage = "SetMemoryUsage";
inline constexpr std::string_view kGetExceptions = "GetExceptions";
// Per-instance liveness (process isolation): a host can be healthy while a
// worker process serving one of its objects is not. The sweeping class
// object asks the host which of its placed instances still run.
inline constexpr std::string_view kCheckObjects = "CheckObjects";

// Registration calls made by bootstrap components (Section 4.2.1: Host
// Objects and Magistrates start outside Legion and "contact their class").
inline constexpr std::string_view kNotifyStarted = "NotifyStarted";

// Fleet monitor (observability plane).
inline constexpr std::string_view kReportMetrics = "ReportMetrics";
inline constexpr std::string_view kGetFleet = "GetFleet";
// Host Objects: force an immediate metrics snapshot publish (testing and
// deterministic sim workloads; production hosts publish on an interval).
inline constexpr std::string_view kPublishMetrics = "PublishMetrics";

}  // namespace methods

}  // namespace legion::core
