// Magistrates and Jurisdictions, paper Sections 2.2 and 3.8.
//
// "A Magistrate is in charge of a Jurisdiction. Thus, a Magistrate manages a
//  set of hosts and some aggregate persistent storage. The purpose of a
//  Magistrate is to perform the activation, deactivation, and migration of
//  the Legion objects under its control... member function calls on
//  Magistrates should be thought of as requests rather than commands" —
// hence the pluggable security policy that may refuse anything.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/binding.hpp"
#include "core/object_impl.hpp"
#include "core/wire.hpp"
#include "persist/vault.hpp"
#include "sched/placement.hpp"

namespace legion::core {

struct ObjectContext;

inline constexpr std::string_view kMagistrateImpl = "legion.magistrate";

struct MagistrateConfig {
  JurisdictionId jurisdiction;
  std::string placement_policy = "round-robin";  // the magistrate's default
  security::PolicyPtr policy;                    // null = allow all requests
  SimTime binding_ttl_us = kSimTimeNever;
  SimTime host_state_ttl_us = 1'000'000;  // GetState cache (virtual 1s)
};

struct MagistrateStats {
  std::uint64_t activations = 0;
  std::uint64_t deactivations = 0;
  std::uint64_t deletions = 0;
  std::uint64_t copies = 0;
  std::uint64_t moves = 0;
  std::uint64_t received = 0;
  std::uint64_t reactivations = 0;  // restarts from checkpoint after failure
  std::uint64_t checkpoints = 0;    // explicit checkpoint refreshes
};

class MagistrateImpl final : public ObjectImpl {
 public:
  explicit MagistrateImpl(MagistrateConfig config);

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kMagistrateImpl);
  }
  void RegisterMethods(MethodTable& table) override;
  // Always consults the *current* policy so a resource provider can replace
  // it at run time ("requests rather than commands", Section 3.8).
  [[nodiscard]] security::PolicyPtr policy() const override;
  void set_policy(security::PolicyPtr policy) {
    config_.policy = std::move(policy);
  }

  // Jurisdiction assembly (bootstrap: magistrates start outside Legion).
  DiskId add_vault(std::string name) { return vaults_.add_vault(std::move(name)); }
  void add_host(const Loid& host_object) { hosts_.push_back(host_object); }
  // Section 2.2: "Jurisdictions can be organized to form hierarchies" — a
  // sub-magistrate's objects are reachable and manageable through this one;
  // StoreNew on a host-less front magistrate delegates to its subs.
  void adopt_magistrate(const Loid& magistrate) {
    sub_magistrates_.push_back(magistrate);
  }
  [[nodiscard]] const std::vector<Loid>& sub_magistrates() const {
    return sub_magistrates_;
  }

  [[nodiscard]] JurisdictionId jurisdiction() const {
    return config_.jurisdiction;
  }
  [[nodiscard]] const std::vector<Loid>& hosts() const { return hosts_; }
  [[nodiscard]] persist::VaultSet& vaults() { return vaults_; }
  [[nodiscard]] const MagistrateStats& magistrate_stats() const {
    return stats_;
  }
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] std::size_t inert_count() const { return inert_.size(); }
  [[nodiscard]] std::size_t checkpoint_count() const {
    return checkpoints_.size();
  }
  [[nodiscard]] bool manages(const Loid& loid) const {
    return active_.contains(loid) || inert_.contains(loid);
  }
  // The vault address of an Active object's recovery checkpoint (tests).
  [[nodiscard]] const persist::PersistentAddress* checkpoint_of(
      const Loid& loid) const {
    auto it = checkpoints_.find(loid);
    return it == checkpoints_.end() ? nullptr : &it->second;
  }

 private:
  struct ActiveRecord {
    ObjectAddress address;               // all replica elements
    std::vector<Loid> host_objects;      // one per replica process
    std::string impl_spec;               // implementation behind the OPR
    std::string executable;              // worker binary ("" = in-process)
  };
  struct CachedHostState {
    sched::HostCandidate candidate;
    SimTime fetched_at = 0;
  };

  Result<wire::PlacementReply> Activate(ObjectContext& ctx, const Loid& loid,
                                        const Loid& suggested_host);
  // Restart `loid` from its retained checkpoint on a live host, excluding
  // the host reported dead. The heart of the recovery protocol: the paper's
  // claim that an object is not its activation (Sections 2.2, 4.1.4).
  Result<wire::PlacementReply> Reactivate(ObjectContext& ctx,
                                          const wire::ReactivateRequest& req);
  // Refresh an Active object's checkpoint from its live state (checkpoint
  // cadence is the caller's policy; creation and migration checkpoint
  // implicitly).
  Result<wire::PlacementReply> Checkpoint(ObjectContext& ctx, const Loid& loid);
  Status Deactivate(ObjectContext& ctx, const Loid& loid);
  Status Delete(ObjectContext& ctx, const Loid& loid);
  Status Copy(ObjectContext& ctx, const Loid& loid, const Loid& dest);
  Status Move(ObjectContext& ctx, const Loid& loid, const Loid& dest);
  // Section 2.2: "if a Jurisdiction's resources impose a substantial load
  // on its Magistrate, the Jurisdiction can be split, and a new Magistrate
  // can be created to take over responsibility for some of the resources
  // and objects." Moves every other managed object to `dest`; returns how
  // many moved.
  Result<std::uint32_t> Split(ObjectContext& ctx, const Loid& dest);
  Result<wire::PlacementReply> StoreNew(ObjectContext& ctx,
                                        const wire::StoreNewRequest& req);
  // Section 4.3: start `replicas` processes of one object on distinct hosts
  // and publish a multi-element Object Address with the given semantic.
  Result<Binding> StoreNewReplicated(ObjectContext& ctx,
                                     const wire::StoreNewReplicatedRequest& req);
  // Application-adjustable fault tolerance (Section 1's objective): probe
  // each replica of an Active object, restart the dead ones from a
  // survivor's state, and return the repaired binding.
  Result<Binding> Heal(ObjectContext& ctx, const Loid& loid);
  Status ReceiveOpr(ObjectContext& ctx, const Buffer& opr_bytes);

  Result<Loid> pick_host(ObjectContext& ctx, const Loid& suggested_host,
                         const std::vector<Loid>& exclude = {});
  Result<sched::HostCandidate> host_state(ObjectContext& ctx,
                                          const Loid& host_object);
  // Captures an OPR for `loid` (deactivating it if Active) and returns its
  // bytes; used by Copy/Move.
  Result<Buffer> capture_opr(ObjectContext& ctx, const Loid& loid);
  void notify_class(ObjectContext& ctx, std::string_view method,
                    const Loid& object, const Loid& other_magistrate);

  // Forwards a request to the first sub-magistrate that accepts it; returns
  // NotFound when none does (or none exist).
  Result<Buffer> forward_to_subs(ObjectContext& ctx, std::string_view method,
                                 const Buffer& args);

  MagistrateConfig config_;
  std::unique_ptr<sched::PlacementPolicy> placement_;
  persist::VaultSet vaults_;
  std::vector<Loid> hosts_;
  std::vector<Loid> sub_magistrates_;
  std::uint64_t sub_rr_ = 0;  // delegation cursor for StoreNew
  // Helpers shared by Activate/Reactivate/Checkpoint.
  [[nodiscard]] Binding make_binding(ObjectContext& ctx, const Loid& loid,
                                     const ObjectAddress& address) const;
  [[nodiscard]] wire::PlacementReply placement_reply(
      ObjectContext& ctx, const Loid& loid, const ActiveRecord& record) const;

  std::unordered_map<Loid, persist::PersistentAddress> inert_;
  // An Active singleton object's last OPR, retained in the vault as its
  // recovery checkpoint (the host death would otherwise take the only copy
  // of the state with it). Keys are always Active here: the entry is created
  // on activation and reconciled on deactivate/delete/move.
  std::unordered_map<Loid, persist::PersistentAddress> checkpoints_;
  std::unordered_map<Loid, ActiveRecord> active_;
  std::unordered_map<Loid, CachedHostState> host_states_;
  MagistrateStats stats_;
};

}  // namespace legion::core
