// The class object's logical table, paper Section 3.7 / Figure 16.
//
// One row per object the class created (instance or subclass), with the
// paper's five fields: LOID, Object Address (NIL when Inert or unknown),
// Current Magistrate List, Scheduling Agent, and Candidate Magistrate List.
// Registered rows additionally cover bootstrap components (host objects,
// magistrates, binding agents) that "contact their class" on startup
// (Section 4.2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/loid.hpp"
#include "core/object_address.hpp"

namespace legion::core {

enum class RowKind : std::uint8_t {
  kInstance = 0,   // created via Create()
  kSubclass = 1,   // created via Derive()
  kRegistered = 2, // bootstrap component that registered itself
};

// Candidate Magistrate List: "this field could be implemented as a simple
// list, but more likely it will need to encapsulate more sophisticated
// information, such as 'no restriction'".
struct CandidateMagistrates {
  enum class Mode : std::uint8_t { kNoRestriction = 0, kExplicit = 1 };
  Mode mode = Mode::kNoRestriction;
  std::vector<Loid> magistrates;

  [[nodiscard]] bool permits(const Loid& magistrate) const {
    if (mode == Mode::kNoRestriction) return true;
    for (const Loid& m : magistrates) {
      if (m == magistrate) return true;
    }
    return false;
  }

  void Serialize(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(mode));
    WriteVector(w, magistrates);
  }
  static CandidateMagistrates Deserialize(Reader& r) {
    CandidateMagistrates c;
    c.mode = static_cast<Mode>(r.u8());
    c.magistrates = ReadVector<Loid>(r);
    return c;
  }
};

struct TableRow {
  Loid loid;
  RowKind kind = RowKind::kInstance;
  ObjectAddress address;                 // invalid == the paper's NIL
  std::vector<Loid> current_magistrates; // who holds / can produce the OPR
  Loid scheduling_agent;
  CandidateMagistrates candidates;
  // Failure-detection bookkeeping: the Host Object the activation was placed
  // on (the probe target of SweepInstances) and the vault location of the
  // object's last OPR checkpoint at its current magistrate. Invalid / zero
  // while the object is Inert or unplaced.
  Loid placed_host;
  std::uint32_t checkpoint_disk = 0;
  std::string checkpoint_path;

  void clear_placement() {
    placed_host = Loid{};
    checkpoint_disk = 0;
    checkpoint_path.clear();
  }

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    w.u8(static_cast<std::uint8_t>(kind));
    address.Serialize(w);
    WriteVector(w, current_magistrates);
    scheduling_agent.Serialize(w);
    candidates.Serialize(w);
    placed_host.Serialize(w);
    w.u32(checkpoint_disk);
    w.str(checkpoint_path);
  }
  static TableRow Deserialize(Reader& r) {
    TableRow row;
    row.loid = Loid::Deserialize(r);
    row.kind = static_cast<RowKind>(r.u8());
    row.address = ObjectAddress::Deserialize(r);
    row.current_magistrates = ReadVector<Loid>(r);
    row.scheduling_agent = Loid::Deserialize(r);
    row.candidates = CandidateMagistrates::Deserialize(r);
    row.placed_host = Loid::Deserialize(r);
    row.checkpoint_disk = r.u32();
    row.checkpoint_path = r.str();
    return row;
  }
};

class LogicalTable {
 public:
  void upsert(TableRow row) { rows_[row.loid] = std::move(row); }
  bool erase(const Loid& loid) { return rows_.erase(loid) > 0; }

  [[nodiscard]] TableRow* find(const Loid& loid) {
    auto it = rows_.find(loid);
    return it == rows_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const TableRow* find(const Loid& loid) const {
    auto it = rows_.find(loid);
    return it == rows_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  [[nodiscard]] std::vector<Loid> loids(
      std::optional<RowKind> kind = std::nullopt) const {
    std::vector<Loid> out;
    for (const auto& [loid, row] : rows_) {
      if (!kind || row.kind == *kind) out.push_back(loid);
    }
    return out;
  }

  void Serialize(Writer& w) const {
    w.u32(static_cast<std::uint32_t>(rows_.size()));
    for (const auto& [_, row] : rows_) row.Serialize(w);
  }
  static LogicalTable Deserialize(Reader& r) {
    LogicalTable t;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      t.upsert(TableRow::Deserialize(r));
    }
    return t;
  }

 private:
  std::unordered_map<Loid, TableRow> rows_;
};

}  // namespace legion::core
