// The class object's logical table, paper Section 3.7 / Figure 16.
//
// One row per object the class created (instance or subclass), with the
// paper's five fields: LOID, Object Address (NIL when Inert or unknown),
// Current Magistrate List, Scheduling Agent, and Candidate Magistrate List.
// Registered rows additionally cover bootstrap components (host objects,
// magistrates, binding agents) that "contact their class" on startup
// (Section 4.2.1).
//
// Storage layout: LOIDs are interned to dense uint32_t ids in insertion
// order; rows live in one segmented slot array indexed by id (no per-row
// heap node), with a parallel liveness column so erase() keeps the id
// stable for later re-insertion. find() returns pointers directly into the
// segments — stable for the table's lifetime, since segments never move.
// Iteration (loids(), Serialize()) walks ids in order, so probe sequences
// and serialized bytes are deterministic, not unordered_map artifacts.
//
// Externally synchronized — deliberately lock-free. A logical table is
// owned by exactly one class object, and every mutation or read happens in
// that object's dispatch context (active objects process one invocation at
// a time). There is no mutex here; do not share a LogicalTable across
// contexts. See DESIGN.md "Concurrency discipline".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/loid.hpp"
#include "base/segmented_vector.hpp"
#include "core/object_address.hpp"

namespace legion::core {

enum class RowKind : std::uint8_t {
  kInstance = 0,   // created via Create()
  kSubclass = 1,   // created via Derive()
  kRegistered = 2, // bootstrap component that registered itself
};

// Candidate Magistrate List: "this field could be implemented as a simple
// list, but more likely it will need to encapsulate more sophisticated
// information, such as 'no restriction'".
struct CandidateMagistrates {
  enum class Mode : std::uint8_t { kNoRestriction = 0, kExplicit = 1 };
  Mode mode = Mode::kNoRestriction;
  std::vector<Loid> magistrates;

  [[nodiscard]] bool permits(const Loid& magistrate) const {
    if (mode == Mode::kNoRestriction) return true;
    for (const Loid& m : magistrates) {
      if (m == magistrate) return true;
    }
    return false;
  }

  void Serialize(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(mode));
    WriteVector(w, magistrates);
  }
  static CandidateMagistrates Deserialize(Reader& r) {
    CandidateMagistrates c;
    c.mode = static_cast<Mode>(r.u8());
    c.magistrates = ReadVector<Loid>(r);
    return c;
  }
};

struct TableRow {
  Loid loid;
  RowKind kind = RowKind::kInstance;
  ObjectAddress address;                 // invalid == the paper's NIL
  std::vector<Loid> current_magistrates; // who holds / can produce the OPR
  Loid scheduling_agent;
  CandidateMagistrates candidates;
  // Failure-detection bookkeeping: the Host Object the activation was placed
  // on (the probe target of SweepInstances) and the vault location of the
  // object's last OPR checkpoint at its current magistrate. Invalid / zero
  // while the object is Inert or unplaced.
  Loid placed_host;
  std::uint32_t checkpoint_disk = 0;
  std::string checkpoint_path;

  void clear_placement() {
    placed_host = Loid{};
    checkpoint_disk = 0;
    checkpoint_path.clear();
  }

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    w.u8(static_cast<std::uint8_t>(kind));
    address.Serialize(w);
    WriteVector(w, current_magistrates);
    scheduling_agent.Serialize(w);
    candidates.Serialize(w);
    placed_host.Serialize(w);
    w.u32(checkpoint_disk);
    w.str(checkpoint_path);
  }
  static TableRow Deserialize(Reader& r) {
    TableRow row;
    row.loid = Loid::Deserialize(r);
    row.kind = static_cast<RowKind>(r.u8());
    row.address = ObjectAddress::Deserialize(r);
    row.current_magistrates = ReadVector<Loid>(r);
    row.scheduling_agent = Loid::Deserialize(r);
    row.candidates = CandidateMagistrates::Deserialize(r);
    row.placed_host = Loid::Deserialize(r);
    row.checkpoint_disk = r.u32();
    row.checkpoint_path = r.str();
    return row;
  }
};

class LogicalTable {
 public:
  void upsert(TableRow row) {
    const std::uint32_t id = ids_.intern(row.loid);
    if (rows_.size() < ids_.size()) {
      rows_.resize(ids_.size());
      live_.resize(ids_.size());
    }
    rows_[id] = std::move(row);
    if (live_[id] == 0) {
      live_[id] = 1;
      ++size_;
    }
  }

  bool erase(const Loid& loid) {
    const std::uint32_t id = ids_.find(loid);
    if (id == LoidInterner::kNoId || live_[id] == 0) return false;
    live_[id] = 0;
    rows_[id] = TableRow{};  // release the row's heap state; id stays valid
    --size_;
    return true;
  }

  [[nodiscard]] TableRow* find(const Loid& loid) {
    const std::uint32_t id = ids_.find(loid);
    return id == LoidInterner::kNoId || live_[id] == 0 ? nullptr : &rows_[id];
  }
  [[nodiscard]] const TableRow* find(const Loid& loid) const {
    const std::uint32_t id = ids_.find(loid);
    return id == LoidInterner::kNoId || live_[id] == 0 ? nullptr : &rows_[id];
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  // Live LOIDs in first-insertion order — deterministic, so SweepInstances
  // probe order and sim traces replay identically run to run.
  [[nodiscard]] std::vector<Loid> loids(
      std::optional<RowKind> kind = std::nullopt) const {
    std::vector<Loid> out;
    out.reserve(size_);
    for (std::size_t id = 0; id < rows_.size(); ++id) {
      if (live_[id] == 0) continue;
      if (!kind || rows_[id].kind == *kind) out.push_back(rows_[id].loid);
    }
    return out;
  }

  // Allocation accounting for bench_memory_per_object.
  [[nodiscard]] std::size_t allocated_bytes() const {
    return ids_.allocated_bytes() + rows_.allocated_bytes() +
           live_.allocated_bytes();
  }

  void Serialize(Writer& w) const {
    w.u32(static_cast<std::uint32_t>(size_));
    for (std::size_t id = 0; id < rows_.size(); ++id) {
      if (live_[id] != 0) rows_[id].Serialize(w);
    }
  }
  // A short or corrupt stream leaves `r` failed (its sticky flag) and the
  // returned table partial: callers MUST check r.ok() before trusting the
  // result, or a truncated OPR/checkpoint silently restores fewer rows.
  static LogicalTable Deserialize(Reader& r) {
    LogicalTable t;
    const std::uint32_t n = r.u32();
    // Each row consumes >= 1 byte: a count beyond the remaining bytes is
    // structurally impossible, so fail the stream up front.
    if (r.ok() && n > r.remaining()) r.mark_failed();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      TableRow row = TableRow::Deserialize(r);
      if (r.ok()) t.upsert(std::move(row));
    }
    return t;
  }

 private:
  LoidInterner ids_;
  SegmentedVector<TableRow> rows_;       // one slot per id
  SegmentedVector<std::uint8_t> live_;   // 1 == row present
  std::size_t size_ = 0;                 // live rows
};

}  // namespace legion::core
