#include "core/scheduling_agent.hpp"

#include "core/active_object.hpp"
#include "core/well_known.hpp"
#include "core/wire.hpp"

namespace legion::core {

void SchedulingAgentImpl::RegisterMethods(MethodTable& table) {
  table.add(methods::kSuggestHost,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad SuggestHost");

              // Enumerate the jurisdiction's hosts via its Magistrate...
              LEGION_ASSIGN_OR_RETURN(
                  Buffer raw,
                  ctx.ref(req.loid).call(methods::kListHosts, Buffer{}));
              LEGION_ASSIGN_OR_RETURN(wire::LoidListReply hosts,
                                      wire::LoidListReply::from_buffer(raw));
              if (hosts.loids.empty()) {
                return FailedPreconditionError("jurisdiction has no hosts");
              }

              // ...query each Host Object's state (Section 3.9 GetState)
              // with a short deadline: a dead host must cost a beat, not a
              // full default timeout, or suggestions during an outage would
              // stall the very reactivations that route around it...
              constexpr SimTime kStateProbeTimeoutUs = 500'000;
              std::vector<sched::HostCandidate> candidates;
              for (const Loid& host : hosts.loids) {
                auto state_raw = ctx.ref(host).call(
                    methods::kGetState, Buffer{}, kStateProbeTimeoutUs);
                if (!state_raw.ok()) continue;  // unreachable host: skip
                auto state = wire::HostStateReply::from_buffer(*state_raw);
                if (!state.ok()) continue;
                sched::HostCandidate candidate;
                candidate.host_object = host;
                candidate.cpu_load = state->cpu_load;
                candidate.active_objects = state->active_objects;
                candidate.capacity = state->capacity;
                candidate.accepting = state->accepting;
                candidates.push_back(candidate);
              }

              // ...and apply the policy.
              const std::size_t pick =
                  policy_->pick(candidates, ctx.shell.rng());
              if (pick >= candidates.size()) {
                return ResourceExhaustedError("no accepting host");
              }
              return wire::LoidReply{candidates[pick].host_object}.to_buffer();
            });
}

Status RegisterSchedulingImpls(ImplementationRegistry& registry) {
  return registry.add(std::string(kSchedulingAgentImpl), [] {
    auto agent = std::make_unique<SchedulingAgentImpl>();
    return agent;
  });
}

}  // namespace legion::core
