// Class objects, paper Sections 2.1, 3.7 and 5.2.2.
//
// "Each class object exports class-mandatory member functions to create new
//  instances (Create()) and subclasses (Derive()), to delete instances and
//  subclasses (Delete()), and to find instances and subclasses
//  (GetBinding()). A class object is responsible for assigning LOID's to its
//  instances and subclasses upon their creation."
//
// ClassObjectImpl is itself an ObjectImpl: classes are objects in Legion.
// Its whole definition serializes through SaveState/RestoreState, so class
// objects migrate and clone like anything else.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/active_object.hpp"
#include "core/logical_table.hpp"
#include "core/object_impl.hpp"
#include "core/wire.hpp"

namespace legion::core {

// Everything that defines a Legion class; the state behind a class object.
struct ClassDefinition {
  std::uint64_t class_id = 0;
  std::string name;
  std::vector<std::uint8_t> public_key;
  std::uint8_t flags = 0;  // wire::kClassFlag{Abstract,Private,Fixed,Clone}

  // Composition of future instances: the class's own implementation plus
  // implementations accumulated through InheritFrom (Section 2.1.1).
  std::string instance_impl;
  // Worker binary able to host instances as their own OS processes; lands in
  // every instance OPR's executable field. "" = in-process activation.
  std::string instance_executable;
  std::vector<std::string> inherited_impls;
  InterfaceDescription interface;

  Loid superclass;             // kind-of relation (Derive)
  std::vector<Loid> bases;     // inherits-from relation (InheritFrom)
  Loid clone_parent;           // set on clones (Section 5.2.2)

  std::vector<Loid> default_magistrates;
  Loid default_scheduling_agent;
  std::uint32_t instance_key_bytes = 8;  // P/8 for generated instance LOIDs
  // Expiry stamped on bindings answered from the logical table (Section
  // 3.5); kSimTimeNever = bindings only die by proving stale.
  SimTime binding_ttl_us = kSimTimeNever;
  // Recovery policy for SweepInstances: a host is suspect after this many
  // consecutive failed probes, each given this long to answer.
  std::uint32_t suspect_threshold = 2;
  SimTime probe_timeout_us = 200'000;

  [[nodiscard]] Loid loid() const {
    return Loid::ForClass(class_id, public_key);
  }
  [[nodiscard]] bool is_abstract() const {
    return (flags & wire::kClassFlagAbstract) != 0;
  }
  [[nodiscard]] bool is_private() const {
    return (flags & wire::kClassFlagPrivate) != 0;
  }
  [[nodiscard]] bool is_fixed() const {
    return (flags & wire::kClassFlagFixed) != 0;
  }
  [[nodiscard]] bool is_clone() const {
    return (flags & wire::kClassFlagClone) != 0;
  }

  // The '+'-spec instances are created with (derived first, bases after).
  [[nodiscard]] std::string instance_impl_spec() const;

  void Serialize(Writer& w) const;
  static ClassDefinition Deserialize(Reader& r);
};

// The registered implementation name of class objects themselves.
inline constexpr std::string_view kClassObjectImpl = "legion.class";

class ClassObjectImpl : public ObjectImpl {
 public:
  ClassObjectImpl() = default;
  explicit ClassObjectImpl(ClassDefinition def) : def_(std::move(def)) {}

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kClassObjectImpl);
  }
  void RegisterMethods(MethodTable& table) override;
  void SaveState(Writer& w) const override;
  Status RestoreState(Reader& r) override;
  [[nodiscard]] InterfaceDescription interface() const override;

  [[nodiscard]] const ClassDefinition& definition() const { return def_; }
  [[nodiscard]] LogicalTable& table() { return table_; }
  [[nodiscard]] const LogicalTable& table() const { return table_; }

  // Used at bootstrap to seed rows for components started outside Legion.
  void register_component(const Loid& loid, const Binding& binding,
                          std::vector<Loid> magistrates = {});
  // Bootstrap configuration: core classes learn the magistrate pool only
  // after magistrates register (they start outside Legion, Section 4.2.1).
  void set_default_magistrates(std::vector<Loid> magistrates) {
    def_.default_magistrates = std::move(magistrates);
  }
  void set_binding_ttl(SimTime ttl_us) { def_.binding_ttl_us = ttl_us; }
  void set_recovery_policy(std::uint32_t suspect_threshold,
                           SimTime probe_timeout_us) {
    def_.suspect_threshold = suspect_threshold;
    def_.probe_timeout_us = probe_timeout_us;
  }
  [[nodiscard]] std::uint64_t creations() const { return creations_; }
  [[nodiscard]] const std::vector<Loid>& clones() const { return clones_; }

 protected:
  // --- class-mandatory operations (also reachable via wire methods) ---
  Result<wire::CreateReply> Create(ObjectContext& ctx,
                                   const wire::CreateRequest& req);
  Result<wire::CreateReply> CreateReplicated(
      ObjectContext& ctx, const wire::CreateReplicatedRequest& req);
  Result<wire::CreateReply> Derive(ObjectContext& ctx,
                                   const wire::DeriveRequest& req);
  Status InheritFrom(ObjectContext& ctx, const Loid& base);
  Status Delete(ObjectContext& ctx, const Loid& target);
  Result<Binding> GetBinding(ObjectContext& ctx,
                             const wire::GetBindingRequest& req);
  Result<wire::CreateReply> Clone(ObjectContext& ctx,
                                  const wire::CreateRequest& req);
  Status MoveInstance(ObjectContext& ctx, const Loid& target,
                      const Loid& dest_magistrate);
  // Failure detection & automatic reactivation (Section 4.1.4's fan-out
  // closed into a loop): probe the Host Object of every placed instance
  // once; hosts that miss `suspect_threshold` consecutive sweeps get their
  // instances reactivated elsewhere from the magistrate's checkpoint.
  Result<wire::SweepReply> SweepInstances(ObjectContext& ctx);
  Status ReactivateInstance(ObjectContext& ctx, TableRow& row,
                            const Loid& dead_host);
  // Process-isolation leg of the sweep: a live host is asked which of the
  // listed placed instances still run (a worker process can die alone);
  // dead ones are reactivated without condemning the host.
  void CheckHostObjects(ObjectContext& ctx, const Loid& host,
                        const std::vector<Loid>& instances,
                        wire::SweepReply& out);

  // Fresh LOID for a new instance: our class id + sequence number + key
  // (Section 3.2: the class uses the class-specific field as it sees fit).
  [[nodiscard]] Loid next_instance_loid();
  [[nodiscard]] std::vector<std::uint8_t> make_key(std::uint64_t salt) const;

  // Picks the magistrate for a new object.
  Result<Loid> choose_magistrate(ObjectContext& ctx,
                                 const std::vector<Loid>& candidates);

  // True when `host` answered a short Ping within the class's probe timeout.
  [[nodiscard]] bool probe_host(ObjectContext& ctx, const Loid& host);
  // A host that answers probes again after instances were moved off it may
  // still run their orphaned old processes; tell it to discard them.
  void release_fences(ObjectContext& ctx, const Loid& host,
                      std::uint32_t& released);

  ClassDefinition def_;
  LogicalTable table_;
  std::uint64_t next_seq_ = 1;
  std::vector<Loid> clones_;     // Section 5.2.2 load shedding
  std::uint64_t clone_rr_ = 0;   // round-robin cursor over clones
  std::uint64_t creations_ = 0;  // served Create() calls (metrics)

  // Transient failure-detection state (deliberately NOT serialized: a
  // migrated class restarts its evidence from zero rather than condemning a
  // host on stale counts).
  std::unordered_map<Loid, std::uint32_t> missed_probes_;
  struct Fence {
    Loid host;    // the host that was declared dead
    Loid object;  // the instance reactivated away from it
  };
  std::vector<Fence> fences_;
};

}  // namespace legion::core
