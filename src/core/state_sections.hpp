// OPR state framing: named per-implementation sections.
//
// A composed object (run-time multiple inheritance) saves one section per
// implementation so each restores exactly what it wrote. The anonymous ""
// section carries caller-supplied init state for the primary implementation
// — Create() callers need not know implementation names.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "base/buffer.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"

namespace legion::core {

struct StateSections {
  std::vector<std::pair<std::string, Buffer>> sections;

  [[nodiscard]] Buffer to_buffer() const {
    Buffer out;
    Writer w(out);
    w.u32(static_cast<std::uint32_t>(sections.size()));
    for (const auto& [name, bytes] : sections) {
      w.str(name);
      w.buffer(bytes);
    }
    return out;
  }

  static Result<StateSections> from_buffer(const Buffer& buf) {
    StateSections out;
    if (buf.empty()) return out;  // fresh object: no acquired state
    Reader r(buf);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      std::string name = r.str();
      Buffer bytes = r.buffer();
      out.sections.emplace_back(std::move(name), std::move(bytes));
    }
    if (!r.ok()) return InvalidArgumentError("malformed state sections");
    return out;
  }

  [[nodiscard]] const Buffer* find(const std::string& name) const {
    for (const auto& [n, bytes] : sections) {
      if (n == name) return &bytes;
    }
    return nullptr;
  }
};

// Wraps raw init state as the anonymous primary section. Empty init state
// stays an empty buffer (a fresh, stateless object).
[[nodiscard]] inline Buffer WrapPrimaryState(Buffer init_state) {
  if (init_state.empty()) return Buffer{};
  StateSections s;
  s.sections.emplace_back("", std::move(init_state));
  return s.to_buffer();
}

}  // namespace legion::core
