#include "core/implementation_registry.hpp"

#include <algorithm>

namespace legion::core {

Status ImplementationRegistry::add(const std::string& name,
                                   ImplFactory factory) {
  if (name.empty() || name.find('+') != std::string::npos) {
    return InvalidArgumentError("implementation name must be non-empty and "
                                "'+'-free: " + name);
  }
  if (!factory) return InvalidArgumentError("null factory for " + name);
  base::WriterMutexLock lock(mutex_);
  if (ids_.find(name) != Interner<std::string>::kNoId) {
    return AlreadyExistsError("implementation already registered: " + name);
  }
  const std::uint32_t id = ids_.intern(name);
  if (factories_.size() < ids_.size()) factories_.resize(ids_.size());
  factories_[id] = std::move(factory);
  return OkStatus();
}

bool ImplementationRegistry::contains(const std::string& name) const {
  base::ReaderMutexLock lock(mutex_);
  return ids_.find(name) != Interner<std::string>::kNoId;
}

std::vector<std::string> ImplementationRegistry::names() const {
  std::vector<std::string> out;
  base::ReaderMutexLock lock(mutex_);
  out.reserve(ids_.size());
  for (std::uint32_t id = 0; id < ids_.size(); ++id) {
    out.push_back(ids_.key_of(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::unique_ptr<ObjectImpl>>>
ImplementationRegistry::instantiate(const std::string& spec) const {
  const std::vector<std::string> parts = SplitSpec(spec);
  if (parts.empty()) return InvalidArgumentError("empty implementation spec");
  // Resolve the whole spec to factory pointers under the shared lock, then
  // run the factories outside it: slots are pointer-stable and never
  // reassigned once registered, and factories may be arbitrarily expensive
  // (or re-enter the registry).
  std::vector<const ImplFactory*> resolved;
  resolved.reserve(parts.size());
  {
    base::ReaderMutexLock lock(mutex_);
    for (const std::string& name : parts) {
      const std::uint32_t id = ids_.find(name);
      if (id == Interner<std::string>::kNoId) {
        return NotFoundError("unknown implementation: " + name);
      }
      resolved.push_back(&factories_[id]);
    }
  }
  std::vector<std::unique_ptr<ObjectImpl>> out;
  out.reserve(resolved.size());
  for (const ImplFactory* factory : resolved) {
    out.push_back((*factory)());
  }
  return out;
}

std::string ImplementationRegistry::JoinSpec(
    const std::vector<std::string>& names) {
  std::string out;
  std::vector<std::string> seen;
  for (const std::string& name : names) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
    seen.push_back(name);
    if (!out.empty()) out += '+';
    out += name;
  }
  return out;
}

std::vector<std::string> ImplementationRegistry::SplitSpec(
    const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = spec.find('+', start);
    const std::string part =
        spec.substr(start, end == std::string::npos ? end : end - start);
    if (!part.empty()) out.push_back(part);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

}  // namespace legion::core
