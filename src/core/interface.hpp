// Interface descriptions.
//
// Paper Section 2: "Each method has a signature that describes the
// parameters and return value, if any, of the method. The complete set of
// method signatures for an object fully describes that object's interface,
// which is inherited from its class. Legion class interfaces can be
// described in an Interface Description Language."
//
// legion::idl parses IDL text into these structures; InheritFrom() merges
// them at run time (Section 2.1.1's inherits-from relation).
#pragma once

#include <string>
#include <vector>

#include "base/serialize.hpp"
#include "base/status.hpp"

namespace legion::core {

struct Parameter {
  std::string type;
  std::string name;

  void Serialize(Writer& w) const {
    w.str(type);
    w.str(name);
  }
  static Parameter Deserialize(Reader& r) {
    Parameter p;
    p.type = r.str();
    p.name = r.str();
    return p;
  }
  friend bool operator==(const Parameter&, const Parameter&) = default;
};

struct MethodSignature {
  std::string return_type = "void";
  std::string name;
  std::vector<Parameter> parameters;

  [[nodiscard]] std::string to_string() const;

  void Serialize(Writer& w) const {
    w.str(return_type);
    w.str(name);
    WriteVector(w, parameters);
  }
  static MethodSignature Deserialize(Reader& r) {
    MethodSignature m;
    m.return_type = r.str();
    m.name = r.str();
    m.parameters = ReadVector<Parameter>(r);
    return m;
  }
  friend bool operator==(const MethodSignature&, const MethodSignature&) =
      default;
};

class InterfaceDescription {
 public:
  InterfaceDescription() = default;
  explicit InterfaceDescription(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<MethodSignature>& methods() const {
    return methods_;
  }
  [[nodiscard]] bool has_method(std::string_view method) const;
  [[nodiscard]] const MethodSignature* find(std::string_view method) const;

  // Adds a signature; replaces any existing method of the same name
  // (overriding during inheritance).
  void add_method(MethodSignature signature);

  // Merges another interface in (InheritFrom semantics): methods already
  // present locally win, inherited ones are appended.
  void merge(const InterfaceDescription& base);

  [[nodiscard]] std::string to_string() const;

  void Serialize(Writer& w) const {
    w.str(name_);
    WriteVector(w, methods_);
  }
  static InterfaceDescription Deserialize(Reader& r) {
    InterfaceDescription d;
    d.name_ = r.str();
    d.methods_ = ReadVector<MethodSignature>(r);
    return d;
  }

  friend bool operator==(const InterfaceDescription&,
                         const InterfaceDescription&) = default;

 private:
  std::string name_;
  std::vector<MethodSignature> methods_;
};

// The object-mandatory interface every Legion object exports (Section 2.1).
[[nodiscard]] InterfaceDescription ObjectMandatoryInterface();
// The class-mandatory additions exported by class objects (Section 3.7).
[[nodiscard]] InterfaceDescription ClassMandatoryInterface();

}  // namespace legion::core
