// LegionSystem: bootstrapping the core objects (paper Section 4.2.1).
//
// "The core objects, including the core Abstract classes (LegionObject,
//  LegionClass, etc.), Host Objects, and Magistrates, are intended to be
//  started from the command line or shell script in the host operating
//  system... The Abstract class objects are started exactly once — when the
//  Legion system comes alive."
//
// LegionSystem is that shell script: given a Runtime whose topology already
// describes jurisdictions and hosts, bootstrap() starts LegionClass, the
// core Abstract classes, the Binding-Agent fabric (optionally a k-ary
// tree), one Host Object per host, and one Magistrate per jurisdiction —
// then wires registrations exactly as the paper prescribes (components
// "contact their class" to announce themselves).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/active_object.hpp"
#include "core/binding_agent.hpp"
#include "core/class_object.hpp"
#include "core/host_object.hpp"
#include "core/legion_class.hpp"
#include "core/magistrate.hpp"
#include "core/monitor_object.hpp"

namespace legion::core {

struct SystemConfig {
  std::uint64_t seed = Rng::kDefaultSeed;

  // Binding-Agent fabric (Sections 3.6 / 5.2).
  std::size_t binding_agents_per_jurisdiction = 1;
  std::size_t ba_tree_fanout = 0;  // 0 = flat: every agent consults
                                   // LegionClass directly; k>0 = k-ary tree
  std::size_t ba_cache_capacity = 4096;

  // Per-object communication layer.
  std::size_t object_cache_capacity = 64;
  std::size_t client_cache_capacity = 64;
  SimTime binding_ttl_us = kSimTimeNever;

  // Jurisdiction defaults.
  std::string placement_policy = "round-robin";
  std::size_t vaults_per_jurisdiction = 1;
  std::uint32_t instance_key_bytes = 8;

  // Fleet metrics plane: how often each Host Object ships a delta snapshot
  // to the MonitorObject. 0 (the default) disables spontaneous publication;
  // kPublishMetrics still forces one on demand.
  SimTime metrics_publish_interval_us = 0;
};

// An external program's handle on Legion: a driver endpoint plus the
// Legion-aware communication layer, with the convenience verbs the paper's
// compiler/run-time would emit (Section 4.1: the binding process "will
// typically be carried out by the various compilers and run-time systems").
class Client {
 public:
  Client(rt::Runtime& runtime, HostId host, std::string label,
         SystemHandles handles, std::size_t cache_capacity, Rng rng);

  [[nodiscard]] Resolver& resolver() { return resolver_; }
  [[nodiscard]] rt::Messenger& messenger() { return messenger_; }

  // The identity this client's calls carry (RA/SA/CA triple). Defaults to
  // the anonymous system environment.
  void set_identity(const Loid& identity) {
    env_ = rt::EnvTriple::ForCaller(identity);
  }
  [[nodiscard]] const rt::EnvTriple& env() const { return env_; }

  [[nodiscard]] ObjectRef ref(const Loid& target) {
    return ObjectRef{resolver_, target, env_};
  }

  // --- convenience verbs -----------------------------------------------
  Result<wire::CreateReply> create(const Loid& class_loid,
                                   Buffer init_state = Buffer{},
                                   std::vector<Loid> candidate_magistrates = {},
                                   const Loid& suggested_host = Loid{});
  Result<wire::CreateReply> create_replicated(
      const Loid& class_loid, Buffer init_state, std::uint32_t replicas,
      AddressSemantic semantic, std::uint32_t k = 1,
      std::vector<Loid> candidate_magistrates = {});
  Result<wire::CreateReply> derive(const Loid& parent_class,
                                   wire::DeriveRequest request);
  Status inherit_from(const Loid& class_loid, const Loid& base_class);
  Status delete_object(const Loid& class_loid, const Loid& target);
  Result<Binding> get_binding(const Loid& target);

 private:
  rt::Messenger messenger_;
  Resolver resolver_;
  rt::EnvTriple env_;
};

class LegionSystem {
 public:
  // The runtime's topology must already contain at least one jurisdiction
  // with at least one host.
  LegionSystem(rt::Runtime& runtime, SystemConfig config);
  ~LegionSystem();

  LegionSystem(const LegionSystem&) = delete;
  LegionSystem& operator=(const LegionSystem&) = delete;

  Status bootstrap();

  [[nodiscard]] rt::Runtime& runtime() { return runtime_; }
  [[nodiscard]] ImplementationRegistry& registry() { return registry_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  // Handles appropriate for a participant living on `host` (its Binding
  // Agent is the one serving that host's first jurisdiction).
  [[nodiscard]] SystemHandles handles_for(HostId host) const;

  [[nodiscard]] std::unique_ptr<Client> make_client(
      HostId host, std::string label = "client");

  // --- component directory ----------------------------------------------
  [[nodiscard]] Loid magistrate_of(JurisdictionId jurisdiction) const;
  [[nodiscard]] std::vector<Loid> magistrates() const;
  [[nodiscard]] Loid host_object_of(HostId host) const;
  [[nodiscard]] const Loid& monitor_loid() const { return monitor_loid_; }
  [[nodiscard]] const Binding& monitor_binding() const {
    return monitor_binding_;
  }
  [[nodiscard]] const std::vector<Loid>& binding_agents() const {
    return ba_loids_;
  }

  // --- direct impl access (bootstrap collaborators & tests) --------------
  [[nodiscard]] LegionClassImpl* legion_class_impl() { return legion_class_; }
  [[nodiscard]] ClassObjectImpl* core_class_impl(std::uint64_t class_id);
  [[nodiscard]] MagistrateImpl* magistrate_impl(JurisdictionId jurisdiction);
  [[nodiscard]] HostObjectImpl* host_impl(HostId host);
  [[nodiscard]] BindingAgentImpl* binding_agent_impl(std::size_t index);
  [[nodiscard]] MonitorObjectImpl* monitor_impl() { return monitor_impl_; }
  [[nodiscard]] ActiveObject* shell_of(const Loid& loid);

 private:
  template <typename Impl>
  struct Booted {
    ActiveObject* shell = nullptr;
    Impl* impl = nullptr;
  };
  template <typename Impl>
  Booted<Impl> boot_shell(HostId host, Loid loid, std::unique_ptr<Impl> impl,
                          std::string label, SystemHandles handles);

  Status start_legion_class(HostId primary);
  Status start_core_classes(HostId primary);
  Status start_binding_agents();
  Status start_host_objects();
  Status start_monitor(HostId primary);
  Status start_magistrates();
  Status finalize_registrations();

  rt::Runtime& runtime_;
  // Immutable after construction (the audited pre-lock-config rule: shared
  // config is either const or atomic, never bare-mutable).
  const SystemConfig config_;
  ImplementationRegistry registry_;
  Rng rng_;
  bool bootstrapped_ = false;

  std::vector<std::unique_ptr<ActiveObject>> shells_;
  std::map<Loid, ActiveObject*> shell_by_loid_;

  LegionClassImpl* legion_class_ = nullptr;
  Binding legion_class_binding_;
  std::map<std::uint64_t, ClassObjectImpl*> core_classes_;  // by class id
  std::map<std::uint64_t, Binding> core_class_bindings_;

  std::vector<Loid> ba_loids_;
  std::vector<Binding> ba_bindings_;
  std::vector<BindingAgentImpl*> ba_impls_;
  std::map<std::uint32_t, std::size_t> ba_of_jurisdiction_;  // first BA index

  std::map<std::uint32_t, HostObjectImpl*> host_impls_;   // by HostId
  std::map<std::uint32_t, Loid> host_loids_;
  std::map<std::uint32_t, Binding> host_bindings_;

  MonitorObjectImpl* monitor_impl_ = nullptr;
  Loid monitor_loid_;
  Binding monitor_binding_;

  std::map<std::uint32_t, MagistrateImpl*> magistrate_impls_;  // by JId
  std::map<std::uint32_t, Loid> magistrate_loids_;
  std::map<std::uint32_t, Binding> magistrate_bindings_;

  std::unique_ptr<Client> bootstrap_client_;
  std::uint64_t next_component_seq_ = 1;
};

}  // namespace legion::core
