#include "core/interface.hpp"

#include <algorithm>

#include "core/well_known.hpp"

namespace legion::core {

std::string MethodSignature::to_string() const {
  std::string out = return_type + " " + name + "(";
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    if (i > 0) out += ", ";
    out += parameters[i].type;
    if (!parameters[i].name.empty()) out += " " + parameters[i].name;
  }
  out += ")";
  return out;
}

bool InterfaceDescription::has_method(std::string_view method) const {
  return find(method) != nullptr;
}

const MethodSignature* InterfaceDescription::find(
    std::string_view method) const {
  auto it = std::find_if(methods_.begin(), methods_.end(),
                         [&](const MethodSignature& m) { return m.name == method; });
  return it == methods_.end() ? nullptr : &*it;
}

void InterfaceDescription::add_method(MethodSignature signature) {
  auto it = std::find_if(
      methods_.begin(), methods_.end(),
      [&](const MethodSignature& m) { return m.name == signature.name; });
  if (it != methods_.end()) {
    *it = std::move(signature);
  } else {
    methods_.push_back(std::move(signature));
  }
}

void InterfaceDescription::merge(const InterfaceDescription& base) {
  for (const MethodSignature& m : base.methods()) {
    if (!has_method(m.name)) methods_.push_back(m);
  }
}

std::string InterfaceDescription::to_string() const {
  std::string out = "interface " + name_ + " {\n";
  for (const auto& m : methods_) {
    out += "  " + m.to_string() + ";\n";
  }
  out += "}";
  return out;
}

namespace {
MethodSignature Sig(std::string_view ret, std::string_view name,
                    std::vector<Parameter> params = {}) {
  return MethodSignature{std::string(ret), std::string(name),
                         std::move(params)};
}
}  // namespace

InterfaceDescription ObjectMandatoryInterface() {
  InterfaceDescription d("LegionObject");
  d.add_method(Sig("void", methods::kPing));
  d.add_method(Sig("loid", methods::kIam));
  d.add_method(Sig("status", methods::kMayI, {{"string", "method"}}));
  d.add_method(Sig("interface", methods::kGetInterface));
  d.add_method(Sig("bytes", methods::kSaveState));
  return d;
}

InterfaceDescription ClassMandatoryInterface() {
  InterfaceDescription d("LegionClass");
  d.merge(ObjectMandatoryInterface());
  d.set_name("LegionClass");
  d.add_method(Sig("binding", methods::kCreate, {{"bytes", "init_state"}}));
  d.add_method(Sig("loid", methods::kDerive, {{"string", "name"}}));
  d.add_method(Sig("void", methods::kInheritFrom, {{"loid", "base"}}));
  d.add_method(Sig("void", methods::kDelete, {{"loid", "target"}}));
  d.add_method(Sig("binding", methods::kGetBinding, {{"loid", "target"}}));
  return d;
}

}  // namespace legion::core
