#include "core/class_object.hpp"

#include <algorithm>
#include <utility>

#include "base/hash.hpp"
#include "core/implementation_registry.hpp"
#include "core/state_sections.hpp"
#include "core/well_known.hpp"
#include "persist/opr.hpp"

namespace legion::core {

// ---- ClassDefinition --------------------------------------------------------

std::string ClassDefinition::instance_impl_spec() const {
  std::vector<std::string> names;
  if (!instance_impl.empty()) names.push_back(instance_impl);
  names.insert(names.end(), inherited_impls.begin(), inherited_impls.end());
  return ImplementationRegistry::JoinSpec(names);
}

void ClassDefinition::Serialize(Writer& w) const {
  w.u64(class_id);
  w.str(name);
  w.bytes(public_key);
  // The has-executable marker travels only in the byte stream (the string is
  // appended after the fixed fields); executable-less definitions keep their
  // historical encoding byte for byte.
  w.u8(instance_executable.empty()
           ? flags
           : static_cast<std::uint8_t>(flags | wire::kClassFlagHasExecutable));
  w.str(instance_impl);
  w.u32(static_cast<std::uint32_t>(inherited_impls.size()));
  for (const auto& impl : inherited_impls) w.str(impl);
  interface.Serialize(w);
  superclass.Serialize(w);
  WriteVector(w, bases);
  clone_parent.Serialize(w);
  WriteVector(w, default_magistrates);
  default_scheduling_agent.Serialize(w);
  w.u32(instance_key_bytes);
  w.i64(binding_ttl_us);
  w.u32(suspect_threshold);
  w.i64(probe_timeout_us);
  if (!instance_executable.empty()) w.str(instance_executable);
}

ClassDefinition ClassDefinition::Deserialize(Reader& r) {
  ClassDefinition d;
  d.class_id = r.u64();
  d.name = r.str();
  d.public_key = r.bytes();
  d.flags = r.u8();
  const bool has_executable = (d.flags & wire::kClassFlagHasExecutable) != 0;
  d.flags = static_cast<std::uint8_t>(d.flags & ~wire::kClassFlagHasExecutable);
  d.instance_impl = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    d.inherited_impls.push_back(r.str());
  }
  d.interface = InterfaceDescription::Deserialize(r);
  d.superclass = Loid::Deserialize(r);
  d.bases = ReadVector<Loid>(r);
  d.clone_parent = Loid::Deserialize(r);
  d.default_magistrates = ReadVector<Loid>(r);
  d.default_scheduling_agent = Loid::Deserialize(r);
  d.instance_key_bytes = r.u32();
  d.binding_ttl_us = r.i64();
  d.suspect_threshold = r.u32();
  d.probe_timeout_us = r.i64();
  if (has_executable) d.instance_executable = r.str();
  return d;
}

// ---- ClassObjectImpl --------------------------------------------------------

void ClassObjectImpl::SaveState(Writer& w) const {
  def_.Serialize(w);
  table_.Serialize(w);
  w.u64(next_seq_);
  WriteVector(w, clones_);
  w.u64(clone_rr_);
  w.u64(creations_);
}

Status ClassObjectImpl::RestoreState(Reader& r) {
  if (r.exhausted()) return OkStatus();  // fresh shell; definition set later
  def_ = ClassDefinition::Deserialize(r);
  if (!r.ok()) return InvalidArgumentError("corrupt class definition");
  if (def_.class_id == 0) return InvalidArgumentError("class state without id");
  // Derive() serializes only the definition: a stream that ends exactly
  // here is a legitimate fresh class. Anything shorter than the full
  // SaveState layout beyond this point is a truncated OPR/checkpoint and
  // must fail loudly — restoring a partial logical table would silently
  // forget objects the class created.
  if (r.exhausted()) {
    table_ = LogicalTable{};
    next_seq_ = 1;
    clones_.clear();
    clone_rr_ = 0;
    creations_ = 0;
    return OkStatus();
  }
  table_ = LogicalTable::Deserialize(r);
  next_seq_ = r.u64();
  clones_ = ReadVector<Loid>(r);
  clone_rr_ = r.u64();
  creations_ = r.u64();
  if (!r.ok()) {
    return InvalidArgumentError("truncated class state: logical table or "
                                "trailing fields cut mid-stream");
  }
  return OkStatus();
}

InterfaceDescription ClassObjectImpl::interface() const {
  InterfaceDescription out = ClassMandatoryInterface();
  out.set_name(def_.name.empty() ? "LegionClass" : def_.name);
  return out;
}

std::vector<std::uint8_t> ClassObjectImpl::make_key(std::uint64_t salt) const {
  std::vector<std::uint8_t> key(def_.instance_key_bytes);
  std::uint64_t h = Mix64(def_.class_id ^ Mix64(salt));
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (i % 8 == 0 && i > 0) h = Mix64(h);
    key[i] = static_cast<std::uint8_t>(h >> (8 * (i % 8)));
  }
  return key;
}

Loid ClassObjectImpl::next_instance_loid() {
  const std::uint64_t seq = next_seq_++;
  return Loid{def_.class_id, seq, make_key(seq)};
}

void ClassObjectImpl::register_component(const Loid& loid,
                                         const Binding& binding,
                                         std::vector<Loid> magistrates) {
  TableRow row;
  row.loid = loid;
  row.kind = RowKind::kRegistered;
  row.address = binding.address;
  row.current_magistrates = std::move(magistrates);
  row.scheduling_agent = def_.default_scheduling_agent;
  table_.upsert(std::move(row));
}

Result<Loid> ClassObjectImpl::choose_magistrate(
    ObjectContext& ctx, const std::vector<Loid>& candidates) {
  const std::vector<Loid>& pool =
      candidates.empty() ? def_.default_magistrates : candidates;
  if (pool.empty()) {
    return FailedPreconditionError("class " + def_.name +
                                   " has no candidate magistrates");
  }
  return pool[ctx.shell.rng().below(pool.size())];
}

Result<wire::CreateReply> ClassObjectImpl::Create(
    ObjectContext& ctx, const wire::CreateRequest& req) {
  // Section 2.1.2: an Abstract class has an empty Create().
  if (def_.is_abstract()) {
    return FailedPreconditionError("class " + def_.name +
                                   " is Abstract: no direct instances");
  }
  if (def_.instance_impl_spec().empty()) {
    return FailedPreconditionError("class " + def_.name +
                                   " has no instance implementation");
  }
  // Section 5.2.2: once cloned, "new instantiation ... requests are passed
  // to the cloned object, making it responsible for the new objects."
  if (!clones_.empty()) {
    const Loid clone = clones_[clone_rr_++ % clones_.size()];
    LEGION_ASSIGN_OR_RETURN(
        Buffer raw, ctx.ref(clone).call(methods::kCreate, req.to_buffer()));
    return wire::CreateReply::from_buffer(raw);
  }

  ++creations_;
  const Loid loid = next_instance_loid();
  LEGION_ASSIGN_OR_RETURN(Loid magistrate,
                          choose_magistrate(ctx, req.candidate_magistrates));

  // The Section 3.7 scheduling hook: with no explicit suggestion, ask the
  // class's default Scheduling Agent where to run the new object. A failed
  // or absent agent falls back to the magistrate's own placement.
  Loid suggested_host = req.suggested_host;
  if (!suggested_host.valid() && def_.default_scheduling_agent.valid()) {
    wire::LoidRequest ask{magistrate};
    auto raw = ctx.ref(def_.default_scheduling_agent)
                   .call(methods::kSuggestHost, ask.to_buffer());
    if (raw.ok()) {
      if (auto reply = wire::LoidReply::from_buffer(*raw); reply.ok()) {
        suggested_host = reply->loid;
      }
    }
  }

  persist::Opr opr;
  opr.loid = loid;
  opr.implementation = def_.instance_impl_spec();
  opr.executable = def_.instance_executable;
  opr.state = WrapPrimaryState(req.init_state);

  wire::StoreNewRequest store{opr.to_bytes(), suggested_host};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw, ctx.ref(magistrate).call(methods::kStoreNew, store.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::PlacementReply reply,
                          wire::PlacementReply::from_buffer(raw));

  TableRow row;
  row.loid = loid;
  row.kind = RowKind::kInstance;
  row.address = reply.binding.address;
  row.current_magistrates = {magistrate};
  row.scheduling_agent = def_.default_scheduling_agent;
  row.placed_host = reply.host;
  row.checkpoint_disk = reply.checkpoint_disk;
  row.checkpoint_path = reply.checkpoint_path;
  if (!req.candidate_magistrates.empty()) {
    row.candidates.mode = CandidateMagistrates::Mode::kExplicit;
    row.candidates.magistrates = req.candidate_magistrates;
  }
  table_.upsert(std::move(row));
  return wire::CreateReply{loid, reply.binding};
}

Result<wire::CreateReply> ClassObjectImpl::CreateReplicated(
    ObjectContext& ctx, const wire::CreateReplicatedRequest& req) {
  if (def_.is_abstract()) {
    return FailedPreconditionError("class " + def_.name +
                                   " is Abstract: no direct instances");
  }
  ++creations_;
  const Loid loid = next_instance_loid();
  LEGION_ASSIGN_OR_RETURN(Loid magistrate,
                          choose_magistrate(ctx, req.candidate_magistrates));

  persist::Opr opr;
  opr.loid = loid;
  opr.implementation = def_.instance_impl_spec();
  opr.executable = def_.instance_executable;
  opr.state = WrapPrimaryState(req.init_state);

  wire::StoreNewReplicatedRequest store;
  store.opr_bytes = opr.to_bytes();
  store.replicas = req.replicas;
  store.semantic = req.semantic;
  store.k = req.k;
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw,
      ctx.ref(magistrate).call(methods::kStoreNewReplicated, store.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(raw));

  TableRow row;
  row.loid = loid;
  row.kind = RowKind::kInstance;
  row.address = reply.binding.address;
  row.current_magistrates = {magistrate};
  row.scheduling_agent = def_.default_scheduling_agent;
  table_.upsert(std::move(row));
  return wire::CreateReply{loid, reply.binding};
}

Result<wire::CreateReply> ClassObjectImpl::Derive(
    ObjectContext& ctx, const wire::DeriveRequest& req) {
  // Section 2.1.2: a Private class has an empty Derive().
  if (def_.is_private()) {
    return FailedPreconditionError("class " + def_.name +
                                   " is Private: no subclasses");
  }
  if (req.name.empty()) return InvalidArgumentError("subclass needs a name");

  // Obtain a fresh Class Identifier from LegionClass, which records the
  // responsibility pair <us, new class> (Section 4.1.3).
  wire::AssignClassIdRequest assign{ctx.shell.self()};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw_id,
      ctx.ref(ctx.shell.handles().legion_class.loid)
          .call(methods::kAssignClassId, assign.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::AssignClassIdReply assigned,
                          wire::AssignClassIdReply::from_buffer(raw_id));

  ClassDefinition d;
  d.class_id = assigned.class_id;
  d.name = req.name;
  d.public_key = make_key(assigned.class_id ^ 0xC1A55ULL);
  d.flags = static_cast<std::uint8_t>(req.flags & ~wire::kClassFlagClone);
  // "D ... inherits ... some or all of the member functions and data
  // structures particular to C": with its own implementation, the subclass
  // keeps C's implementations as bases; otherwise it reuses them wholesale.
  if (req.instance_impl.empty()) {
    d.instance_impl = def_.instance_impl;
    d.inherited_impls = def_.inherited_impls;
  } else {
    d.instance_impl = req.instance_impl;
    if (!def_.instance_impl.empty()) {
      d.inherited_impls.push_back(def_.instance_impl);
    }
    d.inherited_impls.insert(d.inherited_impls.end(),
                             def_.inherited_impls.begin(),
                             def_.inherited_impls.end());
  }
  // As with instance_impl: an explicit worker binary overrides, an empty one
  // inherits the superclass's (usually none).
  d.instance_executable = req.instance_executable.empty()
                              ? def_.instance_executable
                              : req.instance_executable;
  d.interface = req.extra_interface;   // subclass additions override,
  d.interface.merge(def_.interface);   // inherited methods follow
  d.interface.set_name(req.name);
  d.superclass = ctx.shell.self();
  d.default_magistrates = req.candidate_magistrates.empty()
                              ? def_.default_magistrates
                              : req.candidate_magistrates;
  d.default_scheduling_agent = def_.default_scheduling_agent;
  d.instance_key_bytes = def_.instance_key_bytes;
  d.binding_ttl_us = def_.binding_ttl_us;
  d.suspect_threshold = def_.suspect_threshold;
  d.probe_timeout_us = def_.probe_timeout_us;

  const Loid new_loid = d.loid();
  Buffer def_bytes;
  Writer w(def_bytes);
  d.Serialize(w);

  persist::Opr opr;
  opr.loid = new_loid;
  opr.implementation = std::string(kClassObjectImpl);
  opr.state = WrapPrimaryState(std::move(def_bytes));

  LEGION_ASSIGN_OR_RETURN(Loid magistrate,
                          choose_magistrate(ctx, req.candidate_magistrates));
  wire::StoreNewRequest store{opr.to_bytes(), Loid{}};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw,
      ctx.ref(magistrate).call(methods::kStoreNew, store.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::PlacementReply reply,
                          wire::PlacementReply::from_buffer(raw));

  TableRow row;
  row.loid = new_loid;
  row.kind = RowKind::kSubclass;
  row.address = reply.binding.address;
  row.current_magistrates = {magistrate};
  row.scheduling_agent = def_.default_scheduling_agent;
  row.placed_host = reply.host;
  row.checkpoint_disk = reply.checkpoint_disk;
  row.checkpoint_path = reply.checkpoint_path;
  table_.upsert(std::move(row));
  return wire::CreateReply{new_loid, reply.binding};
}

Status ClassObjectImpl::InheritFrom(ObjectContext& ctx, const Loid& base) {
  // Section 2.1.2: a Fixed class has an empty InheritFrom().
  if (def_.is_fixed()) {
    return FailedPreconditionError("class " + def_.name +
                                   " is Fixed: cannot inherit");
  }
  if (!base.names_class_object()) {
    return InvalidArgumentError("InheritFrom target is not a class object");
  }
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          ctx.ref(base).call("DescribeClass", Buffer{}));
  LEGION_ASSIGN_OR_RETURN(wire::DescribeClassReply desc,
                          wire::DescribeClassReply::from_buffer(raw));

  // "This causes B's member functions to be added to C's interface" and
  // alters "the composition of future instances" (Section 2.1.1).
  def_.interface.merge(desc.interface);
  for (const std::string& impl :
       ImplementationRegistry::SplitSpec(desc.impl_spec)) {
    if (impl == def_.instance_impl) continue;
    if (std::find(def_.inherited_impls.begin(), def_.inherited_impls.end(),
                  impl) == def_.inherited_impls.end()) {
      def_.inherited_impls.push_back(impl);
    }
  }
  if (std::find(def_.bases.begin(), def_.bases.end(), base) ==
      def_.bases.end()) {
    def_.bases.push_back(base);
  }
  return OkStatus();
}

Status ClassObjectImpl::Delete(ObjectContext& ctx, const Loid& target) {
  TableRow* row = table_.find(target);
  if (row == nullptr) {
    return NotFoundError("not an instance or subclass of " + def_.name);
  }
  // "Both Active and Inert copies of the object are removed" (Section 3.8).
  Status last = OkStatus();
  for (const Loid& magistrate : row->current_magistrates) {
    wire::LoidRequest req{target};
    auto raw = ctx.ref(magistrate).call(methods::kDelete, req.to_buffer());
    if (!raw.ok() && raw.status().code() != StatusCode::kNotFound) {
      last = raw.status();
    }
  }
  table_.erase(target);
  return last;
}

Result<Binding> ClassObjectImpl::GetBinding(ObjectContext& ctx,
                                            const wire::GetBindingRequest& req) {
  TableRow* row = table_.find(req.loid);
  if (row == nullptr) {
    return NotFoundError("no binding exists for " + req.loid.to_string());
  }
  if (req.mode == wire::GetBindingMode::kRefresh && row->address.valid() &&
      row->address == req.stale.address &&
      !row->current_magistrates.empty()) {
    // The caller claims our cached Object Address is dead: NIL it out and
    // fall through to the magistrates (Section 3.6's GetBinding(binding)).
    // Registered bootstrap components (empty magistrate list) keep their
    // address: they have no OPR to reactivate from, and a drop-induced
    // timeout must not un-register a live magistrate or host object.
    row->address = ObjectAddress{};
  }
  if (row->address.valid()) {
    return Binding{row->loid, row->address,
                   def_.binding_ttl_us == kSimTimeNever
                       ? kSimTimeNever
                       : ctx.shell.now() + def_.binding_ttl_us};
  }
  // Object Address is NIL: consult the Current Magistrate List. "Thus,
  // referring to the LOID of an Inert object can cause the object to be
  // activated" (Section 4.1.2).
  Status last = UnavailableError("object has no magistrate");
  for (const Loid& magistrate : row->current_magistrates) {
    wire::ActivateRequest activate{row->loid, Loid{}};
    auto raw = ctx.ref(magistrate).call(methods::kActivate, activate.to_buffer());
    if (!raw.ok()) {
      last = raw.status();
      continue;
    }
    auto reply = wire::PlacementReply::from_buffer(*raw);
    if (!reply.ok()) {
      last = reply.status();
      continue;
    }
    row->address = reply->binding.address;
    row->placed_host = reply->host;
    row->checkpoint_disk = reply->checkpoint_disk;
    row->checkpoint_path = reply->checkpoint_path;
    return reply->binding;
  }
  return last;
}

Result<wire::CreateReply> ClassObjectImpl::Clone(
    ObjectContext& ctx, const wire::CreateRequest& req) {
  // Section 5.2.2: "The cloned class is derived from the heavily used class
  // without changing the interface in any way."
  if (def_.is_clone()) {
    return FailedPreconditionError("clones cannot be cloned");
  }
  wire::AssignClassIdRequest assign{ctx.shell.self()};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw_id,
      ctx.ref(ctx.shell.handles().legion_class.loid)
          .call(methods::kAssignClassId, assign.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::AssignClassIdReply assigned,
                          wire::AssignClassIdReply::from_buffer(raw_id));

  ClassDefinition d = def_;
  d.class_id = assigned.class_id;
  d.name = def_.name + "~clone" + std::to_string(clones_.size() + 1);
  d.public_key = make_key(assigned.class_id ^ 0xC70EULL);
  d.flags = static_cast<std::uint8_t>(def_.flags | wire::kClassFlagClone);
  d.clone_parent = ctx.shell.self();
  if (!req.candidate_magistrates.empty()) {
    d.default_magistrates = req.candidate_magistrates;
  }

  const Loid clone_loid = d.loid();
  Buffer def_bytes;
  Writer w(def_bytes);
  d.Serialize(w);

  persist::Opr opr;
  opr.loid = clone_loid;
  opr.implementation = std::string(kClassObjectImpl);
  opr.state = WrapPrimaryState(std::move(def_bytes));

  LEGION_ASSIGN_OR_RETURN(Loid magistrate,
                          choose_magistrate(ctx, req.candidate_magistrates));
  wire::StoreNewRequest store{opr.to_bytes(), req.suggested_host};
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw,
      ctx.ref(magistrate).call(methods::kStoreNew, store.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::PlacementReply reply,
                          wire::PlacementReply::from_buffer(raw));

  TableRow row;
  row.loid = clone_loid;
  row.kind = RowKind::kSubclass;
  row.address = reply.binding.address;
  row.current_magistrates = {magistrate};
  row.placed_host = reply.host;
  row.checkpoint_disk = reply.checkpoint_disk;
  row.checkpoint_path = reply.checkpoint_path;
  table_.upsert(std::move(row));
  clones_.push_back(clone_loid);
  return wire::CreateReply{clone_loid, reply.binding};
}

Status ClassObjectImpl::MoveInstance(ObjectContext& ctx, const Loid& target,
                                     const Loid& dest_magistrate) {
  TableRow* row = table_.find(target);
  if (row == nullptr) {
    return NotFoundError("not an instance of " + def_.name);
  }
  if (!row->candidates.permits(dest_magistrate)) {
    return FailedPreconditionError(
        "destination not on the candidate magistrate list");
  }
  if (row->current_magistrates.empty()) {
    return FailedPreconditionError("object has no current magistrate");
  }
  const Loid src = row->current_magistrates.front();
  wire::TransferRequest req{target, dest_magistrate};
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          ctx.ref(src).call(methods::kMove, req.to_buffer()));
  (void)raw;
  row->current_magistrates = {dest_magistrate};
  row->address = ObjectAddress{};  // inert at the destination
  row->clear_placement();          // next activation records a new host
  return OkStatus();
}

// ---- Failure detection & automatic reactivation ----------------------------

bool ClassObjectImpl::probe_host(ObjectContext& ctx, const Loid& host) {
  // One resolve plus one Ping with a short deadline — deliberately not the
  // resolver's retrying call(): the sweep wants cheap probes whose failures
  // are evidence, not something to paper over.
  auto binding = ctx.shell.resolver().resolve(host, def_.probe_timeout_us);
  if (!binding.ok()) return false;
  return ctx.shell.resolver()
      .call_binding(*binding, methods::kPing, Buffer{}, ctx.outgoing_env(),
                    def_.probe_timeout_us)
      .ok();
}

void ClassObjectImpl::release_fences(ObjectContext& ctx, const Loid& host,
                                     std::uint32_t& released) {
  for (std::size_t i = 0; i < fences_.size();) {
    if (fences_[i].host != host) {
      ++i;
      continue;
    }
    // The revived host may still run the pre-failure process; its state is
    // obsolete (the object was restarted from the checkpoint), so discard.
    wire::StopObjectRequest stop{fences_[i].object, /*discard_state=*/true};
    (void)ctx.ref(host).call(methods::kStopObject, stop.to_buffer());
    ++released;
    fences_[i] = fences_.back();
    fences_.pop_back();
  }
}

Status ClassObjectImpl::ReactivateInstance(ObjectContext& ctx, TableRow& row,
                                           const Loid& dead_host) {
  if (row.current_magistrates.empty()) {
    return FailedPreconditionError("object has no current magistrate");
  }
  const Binding stale{row.loid, row.address, kSimTimeNever};

  // Ask the Scheduling Agent as on creation, but drop a suggestion that
  // names the dead host — the agent's view may predate the failure.
  Loid suggested;
  if (row.scheduling_agent.valid()) {
    wire::LoidRequest ask{row.current_magistrates.front()};
    auto raw = ctx.ref(row.scheduling_agent)
                   .call(methods::kSuggestHost, ask.to_buffer());
    if (raw.ok()) {
      if (auto reply = wire::LoidReply::from_buffer(*raw);
          reply.ok() && reply->loid != dead_host) {
        suggested = reply->loid;
      }
    }
  }

  wire::ReactivateRequest req{row.loid, suggested, dead_host};
  Status last = UnavailableError("object has no magistrate");
  for (const Loid& magistrate : row.current_magistrates) {
    auto raw = ctx.ref(magistrate).call(methods::kReactivate, req.to_buffer());
    if (!raw.ok()) {
      last = raw.status();
      continue;
    }
    auto reply = wire::PlacementReply::from_buffer(*raw);
    if (!reply.ok()) {
      last = reply.status();
      continue;
    }
    row.address = reply->binding.address;
    row.placed_host = reply->host;
    row.checkpoint_disk = reply->checkpoint_disk;
    row.checkpoint_path = reply->checkpoint_path;

    // Section 4.1.4's fan-out: invalidate the dead binding at the Binding
    // Agent *before* publishing the replacement, so no interleaved lookup
    // can re-cache the old address on top of the new one.
    Resolver& resolver = ctx.shell.resolver();
    const Binding& agent = ctx.shell.handles().default_binding_agent;
    wire::InvalidateBindingRequest invalidate{wire::GetBindingMode::kRefresh,
                                              row.loid, stale};
    (void)resolver.call_binding(agent, methods::kInvalidateBinding,
                                invalidate.to_buffer(), ctx.outgoing_env(),
                                rt::Messenger::kDefaultTimeoutUs);
    wire::AddBindingRequest add{reply->binding};
    (void)resolver.call_binding(agent, methods::kAddBinding, add.to_buffer(),
                                ctx.outgoing_env(),
                                rt::Messenger::kDefaultTimeoutUs);
    resolver.cache().invalidate_exact(stale);
    resolver.cache().put(reply->binding);

    // If the host was merely partitioned, its copy of the object may still
    // run; reap it when the host answers probes again.
    if (dead_host.valid()) fences_.push_back(Fence{dead_host, row.loid});
    return OkStatus();
  }
  return last;
}

void ClassObjectImpl::CheckHostObjects(ObjectContext& ctx, const Loid& host,
                                       const std::vector<Loid>& instances,
                                       wire::SweepReply& out) {
  // The host answers probes, but with per-process activation a worker can
  // have died (kill -9) without taking the host down. Ask which of our
  // placed instances still run; reactivate the dead ones. The host is NOT
  // condemned — dead_host stays invalid, so no fence is planted and the
  // host keeps its other objects.
  if (instances.empty()) return;
  wire::CheckObjectsRequest check{instances};
  auto raw = ctx.ref(host).call(methods::kCheckObjects, check.to_buffer());
  if (!raw.ok()) return;  // pre-process hosts may not export the method
  auto reply = wire::CheckObjectsReply::from_buffer(*raw);
  if (!reply.ok()) return;
  for (const Loid& loid : reply->dead) {
    TableRow* row = table_.find(loid);
    if (row == nullptr) continue;
    ++out.instances_dead;
    if (ReactivateInstance(ctx, *row, Loid{}).ok()) {
      ++out.reactivated;
    } else {
      ++out.failed;
    }
  }
}

Result<wire::SweepReply> ClassObjectImpl::SweepInstances(ObjectContext& ctx) {
  wire::SweepReply out;
  // Group placed instances by Host Object: one probe per host however many
  // instances it carries, so sweep (and recovery) cost scales with this
  // class's population, not with system size.
  std::unordered_map<Loid, std::vector<Loid>> by_host;
  for (const Loid& loid : table_.loids(RowKind::kInstance)) {
    const TableRow* row = table_.find(loid);
    if (row == nullptr || !row->placed_host.valid() || !row->address.valid()) {
      continue;
    }
    by_host[row->placed_host].push_back(loid);
  }
  // Hosts that only owe us fences still get probed, so orphaned processes
  // are reaped once the host returns.
  for (const Fence& fence : fences_) by_host.try_emplace(fence.host);

  for (auto& [host, instances] : by_host) {
    ++out.hosts_probed;
    if (probe_host(ctx, host)) {
      missed_probes_.erase(host);
      release_fences(ctx, host, out.fences_released);
      CheckHostObjects(ctx, host, instances, out);
      continue;
    }
    const std::uint32_t misses = ++missed_probes_[host];
    if (misses < def_.suspect_threshold || instances.empty()) continue;
    ++out.hosts_suspect;
    for (const Loid& loid : instances) {
      TableRow* row = table_.find(loid);
      if (row == nullptr) continue;
      if (ReactivateInstance(ctx, *row, host).ok()) {
        ++out.reactivated;
      } else {
        ++out.failed;
      }
    }
    // Verdict delivered; a still-dead host re-accumulates evidence before
    // any instance placed on it later is moved again.
    missed_probes_.erase(host);
  }
  return out;
}

void ClassObjectImpl::RegisterMethods(MethodTable& table) {
  table.add(methods::kCreate, [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
    auto req = wire::CreateRequest::Deserialize(args);
    if (!args.ok()) return InvalidArgumentError("bad Create args");
    LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply, Create(ctx, req));
    return reply.to_buffer();
  });
  table.add(methods::kCreateReplicated,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::CreateReplicatedRequest::Deserialize(args);
              if (!args.ok()) {
                return InvalidArgumentError("bad CreateReplicated args");
              }
              LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply,
                                      CreateReplicated(ctx, req));
              return reply.to_buffer();
            });
  table.add(methods::kDerive, [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
    auto req = wire::DeriveRequest::Deserialize(args);
    if (!args.ok()) return InvalidArgumentError("bad Derive args");
    LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply, Derive(ctx, req));
    return reply.to_buffer();
  });
  table.add(methods::kInheritFrom,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad InheritFrom args");
              LEGION_RETURN_IF_ERROR(InheritFrom(ctx, req.loid));
              return Buffer{};
            });
  table.add(methods::kDelete,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Delete args");
              LEGION_RETURN_IF_ERROR(Delete(ctx, req.loid));
              return Buffer{};
            });
  table.add(methods::kGetBinding,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::GetBindingRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad GetBinding args");
              LEGION_ASSIGN_OR_RETURN(Binding binding, GetBinding(ctx, req));
              return wire::BindingReply{std::move(binding)}.to_buffer();
            });
  table.add(methods::kClone,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::CreateRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Clone args");
              LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply, Clone(ctx, req));
              return reply.to_buffer();
            });
  table.add("GetClone", [this](ObjectContext& ctx, Reader&) -> Result<Buffer> {
    // Clients in different domains adopt different clones and create
    // directly against them (Section 5.2.2's load-spreading intent).
    if (clones_.empty()) {
      return wire::LoidReply{ctx.shell.self()}.to_buffer();
    }
    const Loid clone = clones_[clone_rr_++ % clones_.size()];
    return wire::LoidReply{clone}.to_buffer();
  });
  table.add(methods::kMoveInstance,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::MoveInstanceRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad MoveInstance args");
              LEGION_RETURN_IF_ERROR(
                  MoveInstance(ctx, req.object, req.dest_magistrate));
              return Buffer{};
            });
  table.add(methods::kReportMove,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::ReportMoveRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad ReportMove args");
              if (TableRow* row = table_.find(req.object)) {
                row->current_magistrates = {req.new_magistrate};
                row->address = ObjectAddress{};
                row->clear_placement();
              }
              return Buffer{};
            });
  table.add("ReportCopy",
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::ReportMoveRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad ReportCopy args");
              // Section 3.7: the Current Magistrate List names every
              // magistrate holding an OPR; a copy adds a second holder.
              if (TableRow* row = table_.find(req.object)) {
                if (std::find(row->current_magistrates.begin(),
                              row->current_magistrates.end(),
                              req.new_magistrate) ==
                    row->current_magistrates.end()) {
                  row->current_magistrates.push_back(req.new_magistrate);
                }
              }
              return Buffer{};
            });
  table.add(methods::kNotifyStarted,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::NotifyStartedRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad NotifyStarted args");
              register_component(req.loid, req.binding);
              return Buffer{};
            });
  table.add(methods::kListInstances,
            [this](ObjectContext&, Reader&) -> Result<Buffer> {
              return wire::LoidListReply{table_.loids(RowKind::kInstance)}
                  .to_buffer();
            });
  table.add(methods::kSweepInstances,
            [this](ObjectContext& ctx, Reader&) -> Result<Buffer> {
              LEGION_ASSIGN_OR_RETURN(wire::SweepReply reply,
                                      SweepInstances(ctx));
              return reply.to_buffer();
            });
  table.add(methods::kSetRecoveryPolicy,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::RecoveryPolicyRequest::Deserialize(args);
              if (!args.ok()) {
                return InvalidArgumentError("bad SetRecoveryPolicy args");
              }
              if (req.suspect_threshold == 0 || req.probe_timeout_us <= 0) {
                return InvalidArgumentError(
                    "threshold and probe timeout must be positive");
              }
              def_.suspect_threshold = req.suspect_threshold;
              def_.probe_timeout_us = req.probe_timeout_us;
              return Buffer{};
            });
  table.add(methods::kSetSchedulingAgent,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::LoidRequest::Deserialize(args);
              if (!args.ok()) {
                return InvalidArgumentError("bad SetSchedulingAgent args");
              }
              // Nil clears the agent (back to magistrate-default placement).
              def_.default_scheduling_agent = req.loid;
              return Buffer{};
            });
  table.add("DescribeClass", [this](ObjectContext&, Reader&) -> Result<Buffer> {
    wire::DescribeClassReply reply;
    reply.class_id = def_.class_id;
    reply.name = def_.name;
    reply.interface = def_.interface;
    reply.impl_spec = def_.instance_impl_spec();
    reply.flags = def_.flags;
    return reply.to_buffer();
  });
}

}  // namespace legion::core
