#include "core/active_object.hpp"

#include <utility>

#include "core/implementation_registry.hpp"
#include "core/state_sections.hpp"
#include "core/well_known.hpp"

namespace legion::core {

ActiveObject::ActiveObject(rt::Runtime& runtime, HostId host, Loid self,
                           std::vector<std::unique_ptr<ObjectImpl>> impls,
                           SystemHandles handles, ActiveObjectConfig config)
    : runtime_(runtime),
      self_(std::move(self)),
      handles_(std::move(handles)),
      config_(std::move(config)),
      messenger_(runtime, host, config_.label, rt::ExecutionMode::kServiced,
                 [this](rt::ServerContext& ctx, Reader& args) {
                   return dispatch(ctx, args);
                 }),
      rng_(Rng{Rng::kDefaultSeed}
               .fork(self_.class_id())
               .fork(self_.class_specific())),
      impls_(std::move(impls)) {
  resolver_ = std::make_unique<Resolver>(messenger_, handles_,
                                         config_.cache_capacity, rng_.fork(1));
  // Derived-first registration: overrides shadow base implementations.
  for (auto& impl : impls_) impl->RegisterMethods(table_);
  install_mandatory_methods();
  collect_policies();
}

void ActiveObject::collect_policies() {
  std::vector<security::PolicyPtr> policies;
  for (const auto& impl : impls_) {
    if (auto p = impl->policy()) policies.push_back(std::move(p));
  }
  if (policies.empty()) {
    policy_ = nullptr;
  } else if (policies.size() == 1) {
    policy_ = std::move(policies.front());
  } else {
    policy_ = std::make_shared<security::AllOf>(std::move(policies));
  }
}

ActiveObject::~ActiveObject() {
  for (auto& impl : impls_) impl->OnDeactivate();
  messenger_.close();
}

SimTime ActiveObject::now() const { return runtime_.now(); }

Status ActiveObject::restore(const Buffer& state) {
  LEGION_ASSIGN_OR_RETURN(StateSections sections,
                          StateSections::from_buffer(state));
  for (std::size_t i = 0; i < impls_.size(); ++i) {
    const Buffer* bytes = sections.find(impls_[i]->implementation_name());
    // The primary (first) implementation also accepts an anonymous section:
    // Create() passes raw init state without knowing implementation names.
    if (bytes == nullptr && i == 0) bytes = sections.find("");
    Buffer empty;
    Reader r(bytes != nullptr ? *bytes : empty);
    LEGION_RETURN_IF_ERROR(impls_[i]->RestoreState(r));
  }
  // Policies may depend on restored state (e.g. an ACL saved in the OPR).
  collect_policies();
  for (auto& impl : impls_) impl->OnActivate(*this);
  return OkStatus();
}

Buffer ActiveObject::save_state() const {
  StateSections sections;
  for (const auto& impl : impls_) {
    Buffer bytes;
    Writer w(bytes);
    impl->SaveState(w);
    sections.sections.emplace_back(impl->implementation_name(),
                                   std::move(bytes));
  }
  return sections.to_buffer();
}

ObjectAddress ActiveObject::address() const {
  return ObjectAddress{ObjectAddressElement::Sim(messenger_.endpoint())};
}

Binding ActiveObject::binding() const {
  Binding b;
  b.loid = self_;
  b.address = address();
  b.expires = config_.binding_ttl_us == kSimTimeNever
                  ? kSimTimeNever
                  : runtime_.now() + config_.binding_ttl_us;
  return b;
}

std::string ActiveObject::impl_spec() const {
  std::vector<std::string> names;
  names.reserve(impls_.size());
  for (const auto& impl : impls_) names.push_back(impl->implementation_name());
  return ImplementationRegistry::JoinSpec(names);
}

InterfaceDescription ActiveObject::interface() const {
  InterfaceDescription out =
      impls_.empty() ? InterfaceDescription{"LegionObject"}
                     : impls_.front()->interface();
  for (std::size_t i = 1; i < impls_.size(); ++i) {
    out.merge(impls_[i]->interface());
  }
  out.merge(ObjectMandatoryInterface());
  return out;
}

void ActiveObject::install_mandatory_methods() {
  // Object-mandatory member functions (Section 2.1). try_emplace semantics
  // let an implementation override any of them — "classes may alter the
  // functionality of object-mandatory member functions".
  table_.add(methods::kPing,
             [](ObjectContext&, Reader&) -> Result<Buffer> { return Buffer{}; });
  table_.add(methods::kIam, [this](ObjectContext&, Reader&) -> Result<Buffer> {
    Buffer out;
    Writer w(out);
    self_.Serialize(w);
    return out;
  });
  table_.add(methods::kMayI,
             [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
               const std::string method = args.str();
               if (!args.ok()) return InvalidArgumentError("bad MayI args");
               if (policy_) {
                 LEGION_RETURN_IF_ERROR(policy_->MayI(method, ctx.call.env));
               }
               return Buffer{};
             });
  table_.add(methods::kGetInterface,
             [this](ObjectContext&, Reader&) -> Result<Buffer> {
               Buffer out;
               Writer w(out);
               interface().Serialize(w);
               return out;
             });
  table_.add(methods::kSaveState,
             [this](ObjectContext&, Reader&) -> Result<Buffer> {
               return save_state();
             });
}

Result<Buffer> ActiveObject::dispatch(rt::ServerContext& ctx, Reader& args) {
  // MayI() gates every invocation (Section 2.4). The MayI method itself is
  // always answerable, so callers can probe before committing.
  if (policy_ && ctx.call.method != methods::kMayI) {
    LEGION_RETURN_IF_ERROR(policy_->MayI(ctx.call.method, ctx.call.env));
  }
  const MethodFn* fn = table_.find(ctx.call.method);
  if (fn == nullptr) {
    ++exceptions_;
    return UnimplementedError("no such method: " + ctx.call.method);
  }
  ObjectContext octx{*this, ctx.call};
  Result<Buffer> result = (*fn)(octx, args);
  if (!result.ok()) ++exceptions_;
  return result;
}

}  // namespace legion::core
