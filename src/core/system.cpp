#include "core/system.hpp"

#include <cassert>
#include <utility>

#include "core/well_known.hpp"

namespace legion::core {

// ---- Client -----------------------------------------------------------------

Client::Client(rt::Runtime& runtime, HostId host, std::string label,
               SystemHandles handles, std::size_t cache_capacity, Rng rng)
    : messenger_(runtime, host, std::move(label), rt::ExecutionMode::kDriver,
                 nullptr),
      resolver_(messenger_, std::move(handles), cache_capacity, rng),
      env_(rt::EnvTriple::System()) {}

Result<wire::CreateReply> Client::create(const Loid& class_loid,
                                         Buffer init_state,
                                         std::vector<Loid> candidate_magistrates,
                                         const Loid& suggested_host) {
  wire::CreateRequest req;
  req.init_state = std::move(init_state);
  req.candidate_magistrates = std::move(candidate_magistrates);
  req.suggested_host = suggested_host;
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          ref(class_loid).call(methods::kCreate, req.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply,
                          wire::CreateReply::from_buffer(raw));
  resolver_.add_binding(reply.binding);  // warm start for the creator
  return reply;
}

Result<wire::CreateReply> Client::create_replicated(
    const Loid& class_loid, Buffer init_state, std::uint32_t replicas,
    AddressSemantic semantic, std::uint32_t k,
    std::vector<Loid> candidate_magistrates) {
  wire::CreateReplicatedRequest req;
  req.init_state = std::move(init_state);
  req.replicas = replicas;
  req.semantic = static_cast<std::uint8_t>(semantic);
  req.k = k;
  req.candidate_magistrates = std::move(candidate_magistrates);
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw,
      ref(class_loid).call(methods::kCreateReplicated, req.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply,
                          wire::CreateReply::from_buffer(raw));
  resolver_.add_binding(reply.binding);
  return reply;
}

Result<wire::CreateReply> Client::derive(const Loid& parent_class,
                                         wire::DeriveRequest request) {
  LEGION_ASSIGN_OR_RETURN(
      Buffer raw, ref(parent_class).call(methods::kDerive, request.to_buffer()));
  LEGION_ASSIGN_OR_RETURN(wire::CreateReply reply,
                          wire::CreateReply::from_buffer(raw));
  resolver_.add_binding(reply.binding);
  return reply;
}

Status Client::inherit_from(const Loid& class_loid, const Loid& base_class) {
  wire::LoidRequest req{base_class};
  return ref(class_loid)
      .call(methods::kInheritFrom, req.to_buffer())
      .status();
}

Status Client::delete_object(const Loid& class_loid, const Loid& target) {
  wire::LoidRequest req{target};
  return ref(class_loid).call(methods::kDelete, req.to_buffer()).status();
}

Result<Binding> Client::get_binding(const Loid& target) {
  return resolver_.resolve(target, rt::Messenger::kDefaultTimeoutUs);
}

// ---- LegionSystem -----------------------------------------------------------

LegionSystem::LegionSystem(rt::Runtime& runtime, SystemConfig config)
    : runtime_(runtime), config_(std::move(config)), rng_(config_.seed) {}

LegionSystem::~LegionSystem() {
  // Clients must die before the shells whose endpoints they reference.
  bootstrap_client_.reset();
  shells_.clear();
}

template <typename Impl>
LegionSystem::Booted<Impl> LegionSystem::boot_shell(HostId host, Loid loid,
                                                    std::unique_ptr<Impl> impl,
                                                    std::string label,
                                                    SystemHandles handles) {
  Impl* raw = impl.get();
  std::vector<std::unique_ptr<ObjectImpl>> impls;
  impls.push_back(std::move(impl));
  ActiveObjectConfig shell_config;
  shell_config.label = std::move(label);
  shell_config.cache_capacity = config_.object_cache_capacity;
  shell_config.binding_ttl_us = config_.binding_ttl_us;
  auto shell = std::make_unique<ActiveObject>(runtime_, host, std::move(loid),
                                              std::move(impls),
                                              std::move(handles),
                                              std::move(shell_config));
  ActiveObject* shell_raw = shell.get();
  shell_by_loid_[shell_raw->self()] = shell_raw;
  shells_.push_back(std::move(shell));
  return Booted<Impl>{shell_raw, raw};
}

ActiveObject* LegionSystem::shell_of(const Loid& loid) {
  auto it = shell_by_loid_.find(loid);
  return it == shell_by_loid_.end() ? nullptr : it->second;
}

SystemHandles LegionSystem::handles_for(HostId host) const {
  SystemHandles handles;
  handles.legion_class = legion_class_binding_;
  const net::HostInfo* info = runtime_.topology().host(host);
  std::size_t ba_index = 0;
  if (info != nullptr && !info->jurisdictions.empty()) {
    auto it = ba_of_jurisdiction_.find(info->jurisdictions.front().value);
    if (it != ba_of_jurisdiction_.end()) ba_index = it->second;
  }
  if (ba_index < ba_bindings_.size()) {
    handles.default_binding_agent = ba_bindings_[ba_index];
  }
  return handles;
}

Status LegionSystem::start_legion_class(HostId primary) {
  auto booted = boot_shell(primary, LegionClassLoid(),
                           std::make_unique<LegionClassImpl>(), "class",
                           SystemHandles{});
  LEGION_RETURN_IF_ERROR(booted.shell->restore(Buffer{}));
  legion_class_ = booted.impl;
  legion_class_binding_ = booted.shell->binding();
  return OkStatus();
}

Status LegionSystem::start_core_classes(HostId primary) {
  struct CoreClassSpec {
    std::uint64_t class_id;
    std::string name;
    std::uint8_t flags;
    std::string instance_impl;
    InterfaceDescription interface;
  };
  std::vector<CoreClassSpec> specs;
  specs.push_back({kLegionObjectClassId, "LegionObject",
                   wire::kClassFlagAbstract, "", ObjectMandatoryInterface()});
  {
    InterfaceDescription host_iface("LegionHost");
    host_iface.merge(ObjectMandatoryInterface());
    for (std::string_view m :
         {methods::kStartObject, methods::kStopObject, methods::kGetState,
          methods::kSetCPULoad, methods::kSetMemoryUsage}) {
      host_iface.add_method(MethodSignature{"bytes", std::string(m), {}});
    }
    specs.push_back({kLegionHostClassId, "LegionHost",
                     wire::kClassFlagAbstract, "", std::move(host_iface)});
  }
  {
    InterfaceDescription mag_iface("LegionMagistrate");
    mag_iface.merge(ObjectMandatoryInterface());
    for (std::string_view m : {methods::kActivate, methods::kDeactivate,
                               methods::kDelete, methods::kCopy, methods::kMove}) {
      mag_iface.add_method(MethodSignature{"bytes", std::string(m), {}});
    }
    specs.push_back({kLegionMagistrateClassId, "LegionMagistrate",
                     wire::kClassFlagAbstract, "", std::move(mag_iface)});
  }
  {
    InterfaceDescription ba_iface("LegionBindingAgent");
    ba_iface.merge(ObjectMandatoryInterface());
    for (std::string_view m : {methods::kGetBinding, methods::kAddBinding,
                               methods::kInvalidateBinding}) {
      ba_iface.add_method(MethodSignature{"binding", std::string(m), {}});
    }
    specs.push_back({kLegionBindingAgentClassId, "LegionBindingAgent", 0,
                     std::string(kBindingAgentImpl), std::move(ba_iface)});
  }
  {
    InterfaceDescription ctx_iface("LegionContext");
    ctx_iface.merge(ObjectMandatoryInterface());
    for (std::string_view m : {"Lookup", "Bind", "Unbind", "List"}) {
      ctx_iface.add_method(MethodSignature{"loid", std::string(m), {}});
    }
    specs.push_back({kLegionContextClassId, "LegionContext", 0,
                     "legion.context", std::move(ctx_iface)});
  }

  for (auto& spec : specs) {
    ClassDefinition def;
    def.class_id = spec.class_id;
    def.name = spec.name;
    def.flags = spec.flags;
    def.instance_impl = spec.instance_impl;
    def.interface = std::move(spec.interface);
    def.superclass =
        spec.class_id == kLegionObjectClassId ? Loid{} : LegionObjectLoid();
    def.instance_key_bytes = config_.instance_key_bytes;

    auto booted = boot_shell(primary, def.loid(),
                             std::make_unique<ClassObjectImpl>(def), "class",
                             SystemHandles{});
    LEGION_RETURN_IF_ERROR(booted.shell->restore(Buffer{}));
    core_classes_[spec.class_id] = booted.impl;
    core_class_bindings_[spec.class_id] = booted.shell->binding();
  }
  return OkStatus();
}

Status LegionSystem::start_binding_agents() {
  const SimTime ttl = config_.binding_ttl_us;
  for (const auto& jurisdiction : runtime_.topology().jurisdictions()) {
    const auto hosts = runtime_.topology().hosts_in(jurisdiction.id);
    if (hosts.empty()) continue;
    for (std::size_t i = 0; i < config_.binding_agents_per_jurisdiction; ++i) {
      BindingAgentConfig ba_config;
      ba_config.cache_capacity = config_.ba_cache_capacity;
      ba_config.binding_ttl_us = ttl;
      const std::size_t index = ba_loids_.size();
      if (config_.ba_tree_fanout > 0 && index > 0) {
        // k-ary combining tree over the global agent order (Section 5.2.2).
        ba_config.parent = ba_bindings_[(index - 1) / config_.ba_tree_fanout];
      }
      const Loid loid{kLegionBindingAgentClassId, next_component_seq_++};
      const HostId host = hosts[i % hosts.size()];
      SystemHandles handles;
      handles.legion_class = legion_class_binding_;
      auto booted = boot_shell(host, loid,
                               std::make_unique<BindingAgentImpl>(ba_config),
                               "binding-agent", handles);
      LEGION_RETURN_IF_ERROR(booted.shell->restore(Buffer{}));
      // An agent is its own Binding Agent.
      handles.default_binding_agent = booted.shell->binding();
      booted.shell->set_handles(handles);

      if (!ba_of_jurisdiction_.contains(jurisdiction.id.value)) {
        ba_of_jurisdiction_[jurisdiction.id.value] = index;
      }
      ba_loids_.push_back(loid);
      ba_bindings_.push_back(booted.shell->binding());
      ba_impls_.push_back(booted.impl);
    }
  }
  if (ba_loids_.empty()) {
    return FailedPreconditionError("no jurisdiction could host a binding agent");
  }
  return OkStatus();
}

Status LegionSystem::start_host_objects() {
  for (const auto& info : runtime_.topology().hosts()) {
    HostServices services;
    services.runtime = &runtime_;
    services.registry = &registry_;
    services.handles = handles_for(info.id);
    services.host = info.id;
    services.object_cache_capacity = config_.object_cache_capacity;
    services.binding_ttl_us = config_.binding_ttl_us;

    const Loid loid{kLegionHostClassId, next_component_seq_++};
    auto booted = boot_shell(info.id, loid,
                             std::make_unique<HostObjectImpl>(services), "host",
                             handles_for(info.id));
    LEGION_RETURN_IF_ERROR(booted.shell->restore(Buffer{}));
    host_impls_[info.id.value] = booted.impl;
    host_loids_[info.id.value] = loid;
    host_bindings_[info.id.value] = booted.shell->binding();
  }
  return OkStatus();
}

Status LegionSystem::start_monitor(HostId primary) {
  // The fleet monitor is a well-known singleton like the core classes: it
  // is registered with LegionClass directly (no wire messages), so boots
  // stay byte-for-byte identical whether or not anything ever publishes.
  monitor_loid_ = LegionMonitorLoid();
  auto booted = boot_shell(
      primary, monitor_loid_,
      std::make_unique<MonitorObjectImpl>(runtime_.metrics()), "monitor",
      handles_for(primary));
  LEGION_RETURN_IF_ERROR(booted.shell->restore(Buffer{}));
  monitor_impl_ = booted.impl;
  monitor_binding_ = booted.shell->binding();
  legion_class_->register_class_binding(kLegionMonitorClassId,
                                        monitor_binding_);
  for (auto& [_, impl] : host_impls_) {
    impl->set_monitor(monitor_binding_, config_.metrics_publish_interval_us);
  }
  return OkStatus();
}

Status LegionSystem::start_magistrates() {
  for (const auto& jurisdiction : runtime_.topology().jurisdictions()) {
    const auto hosts = runtime_.topology().hosts_in(jurisdiction.id);
    if (hosts.empty()) continue;

    MagistrateConfig mag_config;
    mag_config.jurisdiction = jurisdiction.id;
    mag_config.placement_policy = config_.placement_policy;
    mag_config.binding_ttl_us = config_.binding_ttl_us;
    auto impl = std::make_unique<MagistrateImpl>(mag_config);
    for (std::size_t i = 0; i < config_.vaults_per_jurisdiction; ++i) {
      impl->add_vault(jurisdiction.name + "-disk" + std::to_string(i + 1));
    }
    for (HostId h : hosts) {
      impl->add_host(host_loids_.at(h.value));
    }

    const Loid loid{kLegionMagistrateClassId, next_component_seq_++};
    auto booted = boot_shell(hosts.front(), loid, std::move(impl), "magistrate",
                             handles_for(hosts.front()));
    LEGION_RETURN_IF_ERROR(booted.shell->restore(Buffer{}));
    magistrate_impls_[jurisdiction.id.value] = booted.impl;
    magistrate_loids_[jurisdiction.id.value] = loid;
    magistrate_bindings_[jurisdiction.id.value] = booted.shell->binding();
  }
  if (magistrate_impls_.empty()) {
    return FailedPreconditionError("no jurisdiction has hosts");
  }
  return OkStatus();
}

Status LegionSystem::finalize_registrations() {
  // Core classes now learn the complete fabric.
  const SystemHandles primary_handles =
      handles_for(runtime_.topology().hosts().front().id);
  legion_class_->register_class_binding(kLegionClassClassId,
                                        legion_class_binding_);
  for (const auto& [class_id, binding] : core_class_bindings_) {
    legion_class_->register_class_binding(class_id, binding);
  }
  shell_of(LegionClassLoid())->set_handles(primary_handles);
  for (const auto& [class_id, _] : core_classes_) {
    shell_of(Loid::ForClass(class_id))->set_handles(primary_handles);
  }

  const std::vector<Loid> all_magistrates = magistrates();
  for (auto& [_, impl] : core_classes_) {
    impl->set_default_magistrates(all_magistrates);
    impl->set_binding_ttl(config_.binding_ttl_us);
  }
  legion_class_->set_default_magistrates(all_magistrates);
  legion_class_->set_binding_ttl(config_.binding_ttl_us);

  // Components announce themselves to their classes over the wire, exactly
  // as Section 4.2.1 prescribes ("they contact their class").
  bootstrap_client_ = make_client(runtime_.topology().hosts().front().id,
                                  "bootstrap");
  auto notify = [&](const Binding& class_binding, const Loid& loid,
                    const Binding& binding) -> Status {
    wire::NotifyStartedRequest req{loid, binding};
    return bootstrap_client_->resolver()
        .call_binding(class_binding, methods::kNotifyStarted, req.to_buffer(),
                      rt::EnvTriple::System(),
                      rt::Messenger::kDefaultTimeoutUs)
        .status();
  };
  for (const auto& [host_value, loid] : host_loids_) {
    LEGION_RETURN_IF_ERROR(notify(core_class_bindings_.at(kLegionHostClassId),
                                  loid, host_bindings_.at(host_value)));
  }
  for (const auto& [j_value, loid] : magistrate_loids_) {
    LEGION_RETURN_IF_ERROR(
        notify(core_class_bindings_.at(kLegionMagistrateClassId), loid,
               magistrate_bindings_.at(j_value)));
  }
  for (std::size_t i = 0; i < ba_loids_.size(); ++i) {
    LEGION_RETURN_IF_ERROR(
        notify(core_class_bindings_.at(kLegionBindingAgentClassId),
               ba_loids_[i], ba_bindings_[i]));
  }
  return OkStatus();
}

Status LegionSystem::bootstrap() {
  if (bootstrapped_) return FailedPreconditionError("already bootstrapped");
  if (runtime_.topology().hosts().empty()) {
    return FailedPreconditionError("topology has no hosts");
  }
  LEGION_RETURN_IF_ERROR(registry_.add(std::string(kClassObjectImpl), [] {
    return std::make_unique<ClassObjectImpl>();
  }));
  LEGION_RETURN_IF_ERROR(registry_.add(std::string(kLegionClassImpl), [] {
    return std::make_unique<LegionClassImpl>();
  }));
  LEGION_RETURN_IF_ERROR(registry_.add(std::string(kBindingAgentImpl), [] {
    return std::make_unique<BindingAgentImpl>();
  }));

  const HostId primary = runtime_.topology().hosts().front().id;
  LEGION_RETURN_IF_ERROR(start_legion_class(primary));
  LEGION_RETURN_IF_ERROR(start_core_classes(primary));
  LEGION_RETURN_IF_ERROR(start_binding_agents());
  LEGION_RETURN_IF_ERROR(start_host_objects());
  LEGION_RETURN_IF_ERROR(start_monitor(primary));
  LEGION_RETURN_IF_ERROR(start_magistrates());
  LEGION_RETURN_IF_ERROR(finalize_registrations());
  bootstrapped_ = true;
  return OkStatus();
}

std::unique_ptr<Client> LegionSystem::make_client(HostId host,
                                                  std::string label) {
  return std::make_unique<Client>(runtime_, host, std::move(label),
                                  handles_for(host),
                                  config_.client_cache_capacity,
                                  rng_.fork(shells_.size() + 0x7EA));
}

Loid LegionSystem::magistrate_of(JurisdictionId jurisdiction) const {
  auto it = magistrate_loids_.find(jurisdiction.value);
  return it == magistrate_loids_.end() ? Loid{} : it->second;
}

std::vector<Loid> LegionSystem::magistrates() const {
  std::vector<Loid> out;
  out.reserve(magistrate_loids_.size());
  for (const auto& [_, loid] : magistrate_loids_) out.push_back(loid);
  return out;
}

Loid LegionSystem::host_object_of(HostId host) const {
  auto it = host_loids_.find(host.value);
  return it == host_loids_.end() ? Loid{} : it->second;
}

ClassObjectImpl* LegionSystem::core_class_impl(std::uint64_t class_id) {
  auto it = core_classes_.find(class_id);
  return it == core_classes_.end() ? nullptr : it->second;
}

MagistrateImpl* LegionSystem::magistrate_impl(JurisdictionId jurisdiction) {
  auto it = magistrate_impls_.find(jurisdiction.value);
  return it == magistrate_impls_.end() ? nullptr : it->second;
}

HostObjectImpl* LegionSystem::host_impl(HostId host) {
  auto it = host_impls_.find(host.value);
  return it == host_impls_.end() ? nullptr : it->second;
}

BindingAgentImpl* LegionSystem::binding_agent_impl(std::size_t index) {
  return index < ba_impls_.size() ? ba_impls_[index] : nullptr;
}

}  // namespace legion::core
