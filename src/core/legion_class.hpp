// LegionClass: the metaclass and class-identifier authority.
//
// Paper Section 4.1.3: "LegionClass can be the authority for locating class
// objects. LegionClass does not directly maintain the bindings; instead, it
// delegates that responsibility to other class objects. To do so,
// LegionClass maintains a mapping of LOID pairs. The existence of pair
// <X,Y> indicates that X is responsible for locating Y."
//
// It is itself a class object (classes are objects), so it inherits the full
// class-mandatory behaviour and adds AssignClassId / LocateClass /
// RegisterClassBinding.
#pragma once

#include <map>

#include "core/class_object.hpp"

namespace legion::core {

inline constexpr std::string_view kLegionClassImpl = "legion.metaclass";

class LegionClassImpl final : public ClassObjectImpl {
 public:
  LegionClassImpl();
  explicit LegionClassImpl(ClassDefinition def);

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kLegionClassImpl);
  }
  void RegisterMethods(MethodTable& table) override;
  void SaveState(Writer& w) const override;
  Status RestoreState(Reader& r) override;

  // Bootstrap: record a core class whose binding LegionClass itself
  // maintains ("started exactly once — when the Legion system comes alive").
  void register_class_binding(std::uint64_t class_id, Binding binding);

  [[nodiscard]] std::uint64_t next_class_id() const { return next_class_id_; }
  [[nodiscard]] const std::map<std::uint64_t, Loid>& responsibility_pairs()
      const {
    return pairs_;
  }

 private:
  std::uint64_t next_class_id_ = kFirstUserClassId;
  // <creator, created>: keyed by the created class id.
  std::map<std::uint64_t, Loid> pairs_;
  // Classes whose bindings LegionClass maintains directly (the core set).
  std::map<std::uint64_t, Binding> bindings_;
};

}  // namespace legion::core
