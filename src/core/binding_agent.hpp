// Binding Agents, paper Sections 3.6, 4.1 and 5.2.2.
//
// "A Binding Agent acts on behalf of other Legion objects to bind LOID's to
//  Object Addresses... Typically, a Binding Agent will maintain a cache of
//  bindings... But any particular Binding Agent may also consult other
//  Binding Agents... If all else fails, the Binding Agent can consult the
//  class of the object which must be able to return a binding if one
//  exists."
//
// Tree organization (Section 5.2.2): instance lookups go straight to the
// responsible class; *class-object* lookups climb the Binding-Agent tree so
// that only the root ever queries LegionClass — the software combining tree
// that arbitrarily reduces LegionClass load.
#pragma once

#include <cstdint>

#include "core/binding_cache.hpp"
#include "core/object_impl.hpp"
#include "core/wire.hpp"

namespace legion::core {

struct ObjectContext;

inline constexpr std::string_view kBindingAgentImpl = "legion.binding-agent";

struct BindingAgentConfig {
  std::size_t cache_capacity = 4096;
  Binding parent;              // invalid = root (consults LegionClass)
  SimTime binding_ttl_us = kSimTimeNever;  // TTL stamped on cached answers

  void Serialize(Writer& w) const {
    w.u64(cache_capacity);
    parent.Serialize(w);
    w.i64(binding_ttl_us);
  }
  static BindingAgentConfig Deserialize(Reader& r) {
    BindingAgentConfig c;
    c.cache_capacity = static_cast<std::size_t>(r.u64());
    c.parent = Binding::Deserialize(r);
    c.binding_ttl_us = r.i64();
    return c;
  }
};

struct BindingAgentStats {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t parent_consults = 0;
  std::uint64_t class_consults = 0;
  std::uint64_t legion_class_consults = 0;
};

class BindingAgentImpl final : public ObjectImpl {
 public:
  BindingAgentImpl() : cache_(config_.cache_capacity) {}
  explicit BindingAgentImpl(BindingAgentConfig config)
      : config_(std::move(config)), cache_(config_.cache_capacity) {}

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kBindingAgentImpl);
  }
  void RegisterMethods(MethodTable& table) override;
  void SaveState(Writer& w) const override;
  Status RestoreState(Reader& r) override;

  [[nodiscard]] const BindingAgentStats& agent_stats() const { return stats_; }
  [[nodiscard]] const BindingCache& cache() const { return cache_; }

 private:
  Result<Binding> resolve(ObjectContext& ctx, const Loid& target);
  Result<Binding> refresh(ObjectContext& ctx,
                          const wire::GetBindingRequest& req);
  // Resolves the binding of a *class object* — the recursion of Section
  // 4.1.3, ending at LegionClass. When `stale` is non-null the caller has
  // proof the current binding is dead (e.g. the class was deactivated), so
  // the final hop issues a *refresh* — the creator then NILs its table row
  // and reactivates the class via its magistrate. Classes are objects too.
  Result<Binding> resolve_class(ObjectContext& ctx, const Loid& class_loid,
                                bool bypass_cache,
                                const Binding* stale = nullptr);
  // One remote call on an explicit binding, as this agent.
  Result<Buffer> agent_call(ObjectContext& ctx, const Binding& target,
                            std::string_view method, Buffer args);

  BindingAgentConfig config_;
  BindingCache cache_;
  BindingAgentStats stats_;
};

}  // namespace legion::core
