// The Legion-aware communication layer (paper Sections 3.3, 4.1, 4.1.4).
//
// Every Legion object (and every external driver) owns a Resolver: a local
// binding cache plus the Object Address of its Binding Agent ("The
// persistent state of each Legion object contains the Object Address of its
// Binding Agent", Section 3.6). Invocations by LOID resolve locally first,
// consult the Binding Agent on a miss, and — when a send bounces or times
// out — invalidate, request a *refresh* via the GetBinding(binding)
// overload, and retry: the stale-binding mechanism of Section 4.1.4.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "base/loid.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "base/rng.hpp"
#include "core/binding.hpp"
#include "core/binding_cache.hpp"
#include "core/well_known.hpp"
#include "rt/messenger.hpp"

namespace legion::core {

// Well-known bindings every participant receives at startup (the bootstrap
// residue of Section 4.2.1).
struct SystemHandles {
  Binding legion_class;          // the single logical LegionClass object
  Binding default_binding_agent; // this participant's Binding Agent

  void Serialize(Writer& w) const {
    legion_class.Serialize(w);
    default_binding_agent.Serialize(w);
  }
  static SystemHandles Deserialize(Reader& r) {
    SystemHandles h;
    h.legion_class = Binding::Deserialize(r);
    h.default_binding_agent = Binding::Deserialize(r);
    return h;
  }
};

// Point-in-time view of one Resolver's counters. Per-instance (the
// binding-path tests assert exact per-client counts); runtime-wide
// aggregates and latency spans live in the runtime's metrics registry
// (resolver.consults, resolver.consult_us, ...).
struct ResolverStats {
  std::uint64_t binding_agent_consults = 0;
  std::uint64_t stale_retries = 0;
  std::uint64_t refreshes = 0;
  // Cold misses that piggy-backed on another caller's in-flight consult
  // (singleflight) instead of stampeding the Binding Agent.
  std::uint64_t coalesced = 0;
  // Lookups answered NotFound straight from the short-TTL negative cache.
  std::uint64_t negative_hits = 0;
};

class Resolver {
 public:
  Resolver(rt::Messenger& messenger, SystemHandles handles,
           std::size_t cache_capacity, Rng rng)
      : messenger_(messenger),
        handles_(std::move(handles)),
        cache_(cache_capacity),
        rng_(rng),
        obs_(messenger.runtime().metrics()) {
    cache_.bind_metrics(messenger.runtime().metrics());
  }

  // LOID -> binding: local cache, then the Binding Agent (Section 4.1.2).
  Result<Binding> resolve(const Loid& target, SimTime timeout_us);

  // Explicitly refresh a binding that "doesn't work" (Section 3.6's
  // GetBinding(binding) overload).
  Result<Binding> refresh(const Binding& stale, SimTime timeout_us);

  // Invoke `method` on the object a binding points at, honouring the Object
  // Address semantics (replication, Section 4.3): sends to the selected
  // element(s) and returns the first successful reply.
  Result<Buffer> call_binding(const Binding& binding, std::string_view method,
                              const Buffer& args, const rt::EnvTriple& env,
                              SimTime timeout_us);

  // Full LOID invocation with the Section 4.1.4 stale-binding loop:
  // resolve -> call -> on failure invalidate + refresh -> retry.
  Result<Buffer> call(const Loid& target, std::string_view method,
                      Buffer args, const rt::EnvTriple& env,
                      SimTime timeout_us);

  // Seeds or drops cache entries (AddBinding / InvalidateBinding analogues
  // for the *local* cache).
  void add_binding(Binding binding) { cache_.put(std::move(binding)); }
  void invalidate(const Loid& loid) { cache_.invalidate(loid); }

  [[nodiscard]] BindingCache& cache() { return cache_; }
  [[nodiscard]] ResolverStats stats() const {
    ResolverStats out;
    out.binding_agent_consults =
        consults_.load(std::memory_order_relaxed);
    out.stale_retries = stale_retries_.load(std::memory_order_relaxed);
    out.refreshes = refreshes_.load(std::memory_order_relaxed);
    out.coalesced = coalesced_.load(std::memory_order_relaxed);
    out.negative_hits = negative_hits_.load(std::memory_order_relaxed);
    return out;
  }
  void reset_stats() {
    consults_.store(0, std::memory_order_relaxed);
    stale_retries_.store(0, std::memory_order_relaxed);
    refreshes_.store(0, std::memory_order_relaxed);
    coalesced_.store(0, std::memory_order_relaxed);
    negative_hits_.store(0, std::memory_order_relaxed);
    cache_.reset_stats();
  }

  [[nodiscard]] rt::Messenger& messenger() { return messenger_; }
  [[nodiscard]] const SystemHandles& handles() const { return handles_; }
  // Bootstrap only: core objects are constructed before their Binding Agent
  // exists, so the handles are completed afterwards (Section 4.2.1), before
  // any concurrent call() can observe them. Unguarded by that protocol.
  void set_handles(SystemHandles handles) { handles_ = std::move(handles); }

  static constexpr int kMaxAttempts = 3;
  // Stale-retry pacing: capped exponential backoff with jitter between the
  // attempts of one call(). A dead host's replacement needs detection plus
  // reactivation to land; immediate retries would burn all attempts inside
  // that window.
  static constexpr SimTime kBackoffBaseUs = 10'000;
  static constexpr SimTime kBackoffCapUs = 160'000;
  // How long a NotFound answer from the Binding Agent suppresses repeat
  // consults for the same LOID. Short on purpose: a dead LOID's storm is
  // absorbed, while a freshly (re)created object is reachable again within
  // a quarter second even if nothing invalidates the negative entry.
  static constexpr SimTime kNegativeTtlUs = 250'000;

 private:
  // Runtime-wide aggregates + latency spans, shared by every resolver of
  // one runtime; looked up once at construction.
  struct Instruments {
    explicit Instruments(obs::Registry& r)
        : consults(r.counter("resolver.consults")),
          cache_hits(r.counter("resolver.cache_hits")),
          stale_retries(r.counter("resolver.stale_retries")),
          refreshes(r.counter("resolver.refreshes")),
          coalesced(r.counter("resolver.coalesced")),
          negative_hits(r.counter("resolver.negative_hits")),
          consult_us(r.histogram("resolver.consult_us")),
          refresh_us(r.histogram("resolver.refresh_us")),
          call_us(r.histogram("resolver.call_us")) {}
    obs::Counter& consults;
    obs::Counter& cache_hits;
    obs::Counter& stale_retries;
    obs::Counter& refreshes;
    obs::Counter& coalesced;
    obs::Counter& negative_hits;
    obs::Histogram& consult_us;
    obs::Histogram& refresh_us;
    obs::Histogram& call_us;
  };

  // One in-flight Binding-Agent consult that concurrent cold misses for
  // the same LOID attach to instead of issuing their own (singleflight).
  // The leader records its thread id so a *re-entrant* miss — the same
  // thread resolving again beneath its own consult via nested dispatch —
  // consults directly rather than deadlocking on itself.
  struct Flight {
    // Ranked above the singleflight table: a flight's mutex is only ever
    // taken after flights_mutex_ has been released (or beneath it, never
    // the other way around).
    base::Mutex m{base::lock_rank::kFlight};
    base::CondVar cv;
    bool done GUARDED_BY(m) = false;
    Result<Binding> result GUARDED_BY(m) = InternalError("consult in flight");
    // Immutable after construction: the creating thread is the leader.
    const std::thread::id leader = std::this_thread::get_id();
  };

  Result<Binding> consult_binding_agent(const Loid& target,
                                        SimTime timeout_us);
  // The cache-miss path of resolve(): singleflight-coalesced consult plus
  // positive/negative cache fill.
  Result<Binding> resolve_miss(const Loid& target, SimTime timeout_us);
  // Jittered delay before retry `attempt + 1` (attempt is 0-based).
  [[nodiscard]] SimTime backoff_delay_us(int attempt);

  rt::Messenger& messenger_;
  SystemHandles handles_;
  BindingCache cache_;
  // select_targets/backoff draw from shared rng state on the call path.
  mutable base::Mutex rng_mutex_{base::lock_rank::kRng};
  Rng rng_ GUARDED_BY(rng_mutex_);
  // Atomic so concurrent call()s on one resolver keep exact counts.
  std::atomic<std::uint64_t> consults_{0};
  std::atomic<std::uint64_t> stale_retries_{0};
  std::atomic<std::uint64_t> refreshes_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> negative_hits_{0};
  base::Mutex flights_mutex_{base::lock_rank::kFlights};
  std::unordered_map<Loid, std::shared_ptr<Flight>> flights_
      GUARDED_BY(flights_mutex_);
  Instruments obs_;
};

// A client-side handle to one Legion object: the LOID plus the comm layer
// used to reach it. Copyable and cheap; all heavy state lives in the
// Resolver.
class ObjectRef {
 public:
  ObjectRef(Resolver& resolver, Loid target, rt::EnvTriple env)
      : resolver_(&resolver), target_(std::move(target)), env_(std::move(env)) {}

  [[nodiscard]] const Loid& loid() const { return target_; }

  Result<Buffer> call(std::string_view method, Buffer args,
                      SimTime timeout_us = rt::Messenger::kDefaultTimeoutUs) {
    return resolver_->call(target_, method, std::move(args), env_, timeout_us);
  }
  Result<Buffer> call(std::string_view method) {
    return call(method, Buffer{});
  }

 private:
  Resolver* resolver_;
  Loid target_;
  rt::EnvTriple env_;
};

}  // namespace legion::core
