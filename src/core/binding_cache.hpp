// The binding cache used at every layer of the Section 4.1 binding path.
//
// Objects cache bindings locally; Binding Agents cache on behalf of their
// clients; classes cache in their logical tables. The same LRU structure
// with TTL awareness backs the first two. Hit/miss/eviction counters feed
// the Section 5.2.1 experiments directly.
//
// Storage layout: every LOID the cache has ever seen is interned once into
// a dense uint32_t id; all per-entry state (binding, negative-entry expiry,
// LRU links) lives in one segmented slot array indexed by id. The LRU order
// is an intrusive doubly-linked list of ids — two uint32_t per entry instead
// of a std::list<Loid> node — and negative entries form a second intrusive
// list in insertion order. Steady-state put/get perform no heap allocation.
//
// Thread-safe: every operation takes the internal mutex (including the
// capacity probe — reset_capacity() may rewrite capacity_ concurrently), so
// one cache may be shared by concurrent call() paths (ThreadRuntime /
// TcpRuntime).
#pragma once

#include <cstdint>
#include <optional>

#include "base/mutex.hpp"
#include "base/segmented_vector.hpp"
#include "base/thread_annotations.hpp"
#include "core/binding.hpp"
#include "obs/metrics.hpp"

namespace legion::core {

struct BindingCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BindingCache {
 public:
  // capacity == 0 disables caching entirely (every lookup misses).
  explicit BindingCache(std::size_t capacity) : capacity_(capacity) {}

  // Reconfigures capacity and drops all contents (the restore path). The
  // cache owns a mutex, so it is rebuilt in place rather than reassigned.
  void reset_capacity(std::size_t capacity) {
    base::MutexLock lock(mutex_);
    capacity_ = capacity;
    drop_contents();
  }

  // Optionally mirrors this cache's counters into runtime-wide aggregates
  // (binding_cache.hits / .misses / .evictions / .invalidations). The
  // registry must outlive the cache.
  void bind_metrics(obs::Registry& registry);

  // Returns a fresh (unexpired) cached binding, updating LRU order.
  std::optional<Binding> get(const Loid& loid, SimTime now);

  // Inserts or refreshes; evicts the least recently used entry when full.
  void put(Binding binding);

  // Short-TTL negative entries: a LOID the Binding Agent just answered
  // NotFound for is remembered until `expires_at`, so a storm of lookups
  // for a dead LOID re-consults once per TTL, not once per caller. A put()
  // of a real binding supersedes the negative entry immediately.
  void put_negative(const Loid& loid, SimTime expires_at);
  // True while an unexpired negative entry covers the LOID (expired entries
  // are dropped on probe).
  bool negative(const Loid& loid, SimTime now);
  [[nodiscard]] std::size_t negative_size() const {
    base::MutexLock lock(mutex_);
    return negative_size_;
  }

  // Section 3.6 InvalidateBinding(LOID): drop whatever is cached.
  bool invalidate(const Loid& loid);
  // Section 3.6 InvalidateBinding(binding): drop only on exact match, so a
  // newer binding that already replaced the stale one survives.
  bool invalidate_exact(const Binding& binding);

  void clear();
  [[nodiscard]] std::size_t size() const {
    base::MutexLock lock(mutex_);
    return size_;
  }
  [[nodiscard]] std::size_t capacity() const {
    base::MutexLock lock(mutex_);
    return capacity_;
  }
  [[nodiscard]] BindingCacheStats stats() const {
    base::MutexLock lock(mutex_);
    return stats_;
  }
  // Structure residency (interner + slot segments), excluding payload heap
  // owned by the cached Bindings themselves; bench_memory_per_object.
  [[nodiscard]] std::size_t allocated_bytes() const {
    base::MutexLock lock(mutex_);
    return ids_.allocated_bytes() + slots_.allocated_bytes();
  }
  void reset_stats() {
    base::MutexLock lock(mutex_);
    stats_ = BindingCacheStats{};
  }

  // True iff the intrusive lists and the slot flags agree exactly: the LRU
  // list links size_ positive slots with intact back-pointers, the negative
  // list links negative_size_ negative slots likewise, no flagged slot is
  // missing from its list, and both populations respect capacity_. The
  // eviction/expiry tests assert this after every step.
  [[nodiscard]] bool consistent() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint8_t kPositive = 1;  // binding + LRU links live
  static constexpr std::uint8_t kNegative = 2;  // neg_expires + neg links live

  // One slot per interned LOID; ids index slots_ directly. Evicted entries
  // keep their slot (flags cleared) and reuse it on re-insertion.
  struct Slot {
    Binding binding;
    SimTime neg_expires = 0;
    std::uint32_t lru_prev = kNil, lru_next = kNil;
    std::uint32_t neg_prev = kNil, neg_next = kNil;
    std::uint8_t flags = 0;
  };

  // All of these require mutex_ held (compiler-enforced).
  std::uint32_t intern_slot(const Loid& loid) REQUIRES(mutex_);
  void lru_link_front(std::uint32_t id) REQUIRES(mutex_);
  void lru_unlink(std::uint32_t id) REQUIRES(mutex_);
  void neg_link_back(std::uint32_t id) REQUIRES(mutex_);
  void neg_unlink(std::uint32_t id) REQUIRES(mutex_);
  void drop_positive(std::uint32_t id) REQUIRES(mutex_);
  void drop_negative(std::uint32_t id) REQUIRES(mutex_);
  void drop_contents() REQUIRES(mutex_);

  // Ranked below the metrics registry: counter mirrors are flushed while
  // mutex_ is held (see the .cpp).
  mutable base::Mutex mutex_{base::lock_rank::kBindingCache};
  std::size_t capacity_ GUARDED_BY(mutex_);
  LoidInterner ids_ GUARDED_BY(mutex_);
  SegmentedVector<Slot> slots_ GUARDED_BY(mutex_);  // one per id
  // Most/least recently used positive entry.
  std::uint32_t lru_head_ GUARDED_BY(mutex_) = kNil;
  std::uint32_t lru_tail_ GUARDED_BY(mutex_) = kNil;
  // Oldest/newest negative entry.
  std::uint32_t neg_head_ GUARDED_BY(mutex_) = kNil;
  std::uint32_t neg_tail_ GUARDED_BY(mutex_) = kNil;
  std::size_t size_ GUARDED_BY(mutex_) = 0;           // positive entries
  std::size_t negative_size_ GUARDED_BY(mutex_) = 0;  // <= capacity_
  BindingCacheStats stats_ GUARDED_BY(mutex_);
  // Runtime-wide aggregate mirrors; null until bind_metrics().
  obs::Counter* agg_hits_ = nullptr;
  obs::Counter* agg_misses_ = nullptr;
  obs::Counter* agg_evictions_ = nullptr;
  obs::Counter* agg_invalidations_ = nullptr;
};

}  // namespace legion::core
