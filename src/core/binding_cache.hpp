// The binding cache used at every layer of the Section 4.1 binding path.
//
// Objects cache bindings locally; Binding Agents cache on behalf of their
// clients; classes cache in their logical tables. The same LRU structure
// with TTL awareness backs the first two. Hit/miss/eviction counters feed
// the Section 5.2.1 experiments directly.
//
// Thread-safe: every operation takes the internal mutex, so one cache may
// be shared by concurrent call() paths (ThreadRuntime / TcpRuntime).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/binding.hpp"
#include "obs/metrics.hpp"

namespace legion::core {

struct BindingCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BindingCache {
 public:
  // capacity == 0 disables caching entirely (every lookup misses).
  explicit BindingCache(std::size_t capacity) : capacity_(capacity) {}

  // Reconfigures capacity and drops all contents (the restore path). The
  // cache owns a mutex, so it is rebuilt in place rather than reassigned.
  void reset_capacity(std::size_t capacity) {
    std::lock_guard lock(mutex_);
    capacity_ = capacity;
    entries_.clear();
    lru_.clear();
    negatives_.clear();
  }

  // Optionally mirrors this cache's counters into runtime-wide aggregates
  // (binding_cache.hits / .misses / .evictions / .invalidations). The
  // registry must outlive the cache.
  void bind_metrics(obs::Registry& registry);

  // Returns a fresh (unexpired) cached binding, updating LRU order.
  std::optional<Binding> get(const Loid& loid, SimTime now);

  // Inserts or refreshes; evicts the least recently used entry when full.
  void put(Binding binding);

  // Short-TTL negative entries: a LOID the Binding Agent just answered
  // NotFound for is remembered until `expires_at`, so a storm of lookups
  // for a dead LOID re-consults once per TTL, not once per caller. A put()
  // of a real binding supersedes the negative entry immediately.
  void put_negative(const Loid& loid, SimTime expires_at);
  // True while an unexpired negative entry covers the LOID (expired entries
  // are dropped on probe).
  bool negative(const Loid& loid, SimTime now);
  [[nodiscard]] std::size_t negative_size() const {
    std::lock_guard lock(mutex_);
    return negatives_.size();
  }

  // Section 3.6 InvalidateBinding(LOID): drop whatever is cached.
  bool invalidate(const Loid& loid);
  // Section 3.6 InvalidateBinding(binding): drop only on exact match, so a
  // newer binding that already replaced the stale one survives.
  bool invalidate_exact(const Binding& binding);

  void clear();
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }
  [[nodiscard]] std::size_t capacity() const {
    std::lock_guard lock(mutex_);
    return capacity_;
  }
  [[nodiscard]] BindingCacheStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }
  void reset_stats() {
    std::lock_guard lock(mutex_);
    stats_ = BindingCacheStats{};
  }

  // True iff the LRU list and the entry map agree exactly: same size, every
  // listed LOID present, every entry's lru_pos pointing back at its own
  // list node. The eviction/expiry tests assert this after every step.
  [[nodiscard]] bool consistent() const;

 private:
  struct Entry {
    Binding binding;
    std::list<Loid>::iterator lru_pos;
  };

  void touch(Entry& entry);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<Loid, Entry> entries_;  // guarded by mutex_
  std::list<Loid> lru_;                      // front = most recent
  // LOID -> expiry of the negative result; bounded by capacity_.
  std::unordered_map<Loid, SimTime> negatives_;  // guarded by mutex_
  BindingCacheStats stats_;                  // guarded by mutex_
  // Runtime-wide aggregate mirrors; null until bind_metrics().
  obs::Counter* agg_hits_ = nullptr;
  obs::Counter* agg_misses_ = nullptr;
  obs::Counter* agg_evictions_ = nullptr;
  obs::Counter* agg_invalidations_ = nullptr;
};

}  // namespace legion::core
