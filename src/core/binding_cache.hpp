// The binding cache used at every layer of the Section 4.1 binding path.
//
// Objects cache bindings locally; Binding Agents cache on behalf of their
// clients; classes cache in their logical tables. The same LRU structure
// with TTL awareness backs the first two. Hit/miss/eviction counters feed
// the Section 5.2.1 experiments directly.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "core/binding.hpp"

namespace legion::core {

struct BindingCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BindingCache {
 public:
  // capacity == 0 disables caching entirely (every lookup misses).
  explicit BindingCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns a fresh (unexpired) cached binding, updating LRU order.
  std::optional<Binding> get(const Loid& loid, SimTime now);

  // Inserts or refreshes; evicts the least recently used entry when full.
  void put(Binding binding);

  // Section 3.6 InvalidateBinding(LOID): drop whatever is cached.
  bool invalidate(const Loid& loid);
  // Section 3.6 InvalidateBinding(binding): drop only on exact match, so a
  // newer binding that already replaced the stale one survives.
  bool invalidate_exact(const Binding& binding);

  void clear();
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const BindingCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BindingCacheStats{}; }

 private:
  struct Entry {
    Binding binding;
    std::list<Loid>::iterator lru_pos;
  };

  void touch(Entry& entry);

  std::size_t capacity_;
  std::unordered_map<Loid, Entry> entries_;
  std::list<Loid> lru_;  // front = most recent
  BindingCacheStats stats_;
};

}  // namespace legion::core
