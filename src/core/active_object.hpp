// The runtime shell of an active Legion object.
//
// Paper Section 3.1: an Active object "is running as a process ... on one or
// more of the hosts in a Jurisdiction, and is described by an OBJECT
// ADDRESS". The shell is that process: it owns the endpoint/messenger, the
// object's Legion-aware communication layer (Resolver), the composed
// implementation stack, and the dispatch loop that enforces MayI() and
// serves the object-mandatory methods.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "core/comm.hpp"
#include "core/interface.hpp"
#include "core/method_table.hpp"
#include "core/object_impl.hpp"
#include "rt/messenger.hpp"

namespace legion::core {

// Services an implementation can use outside (or inside) a call: the
// object's identity, comm layer, clock, and randomness.
class ShellServices {
 public:
  virtual ~ShellServices() = default;

  [[nodiscard]] virtual const Loid& self() const = 0;
  [[nodiscard]] virtual Resolver& resolver() = 0;
  [[nodiscard]] virtual rt::Messenger& messenger() = 0;
  [[nodiscard]] virtual Rng& rng() = 0;
  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual const SystemHandles& handles() const = 0;

  // Environment for calls this object originates on its own behalf.
  [[nodiscard]] rt::EnvTriple self_env() const {
    return rt::EnvTriple::ForCaller(self());
  }
  // A client handle to another object, calling as ourselves.
  [[nodiscard]] ObjectRef ref(const Loid& target) {
    return ObjectRef{resolver(), target, self_env()};
  }
};

// Per-invocation view handed to method implementations.
struct ObjectContext {
  ShellServices& shell;
  const rt::CallInfo& call;

  // Environment for nested calls made while serving this invocation: the
  // responsible and security agents propagate from the inbound triple
  // (Section 2.4); the calling agent becomes this object.
  [[nodiscard]] rt::EnvTriple outgoing_env() const {
    rt::EnvTriple env = call.env;
    if (!env.responsible_agent.valid()) env.responsible_agent = shell.self();
    if (!env.security_agent.valid()) env.security_agent = shell.self();
    env.calling_agent = shell.self();
    return env;
  }
  // A handle that propagates this invocation's environment onward.
  [[nodiscard]] ObjectRef ref(const Loid& target) const {
    return ObjectRef{shell.resolver(), target, outgoing_env()};
  }
};

struct ActiveObjectConfig {
  std::string label = "object";     // stats label (component kind)
  std::size_t cache_capacity = 64;  // local binding cache entries
  SimTime binding_ttl_us = kSimTimeNever;  // expiry stamped on own bindings
};

class ActiveObject final : public ShellServices {
 public:
  // The shell registers its endpoint immediately; impls are attached and
  // activated via restore().
  ActiveObject(rt::Runtime& runtime, HostId host, Loid self,
               std::vector<std::unique_ptr<ObjectImpl>> impls,
               SystemHandles handles, ActiveObjectConfig config);
  ~ActiveObject() override;

  ActiveObject(const ActiveObject&) = delete;
  ActiveObject& operator=(const ActiveObject&) = delete;

  // Restores per-implementation state from an OPR state buffer (the named-
  // sections format produced by save_state) and fires OnActivate hooks.
  Status restore(const Buffer& state);

  // Captures the full object state (every composed implementation).
  [[nodiscard]] Buffer save_state() const;

  [[nodiscard]] ObjectAddress address() const;
  [[nodiscard]] Binding binding() const;
  [[nodiscard]] std::string impl_spec() const;
  [[nodiscard]] InterfaceDescription interface() const;
  [[nodiscard]] EndpointId endpoint() const { return messenger_.endpoint(); }

  // ShellServices:
  [[nodiscard]] const Loid& self() const override { return self_; }
  [[nodiscard]] Resolver& resolver() override { return *resolver_; }
  [[nodiscard]] rt::Messenger& messenger() override { return messenger_; }
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] const SystemHandles& handles() const override {
    return handles_;
  }
  // Bootstrap only: see Resolver::set_handles.
  void set_handles(SystemHandles handles) {
    handles_ = handles;
    resolver_->set_handles(std::move(handles));
  }

  // Direct access for same-process collaborators (Host Object, tests).
  [[nodiscard]] const std::vector<std::unique_ptr<ObjectImpl>>& impls() const {
    return impls_;
  }

  // Method invocations that ended in an error status — the "object
  // exceptions" a Host Object reports (Section 2.3).
  [[nodiscard]] std::uint64_t exceptions() const { return exceptions_; }

 private:
  Result<Buffer> dispatch(rt::ServerContext& ctx, Reader& args);
  void install_mandatory_methods();
  void collect_policies();

  rt::Runtime& runtime_;
  Loid self_;
  SystemHandles handles_;
  ActiveObjectConfig config_;
  rt::Messenger messenger_;
  std::unique_ptr<Resolver> resolver_;
  Rng rng_;
  std::vector<std::unique_ptr<ObjectImpl>> impls_;
  MethodTable table_;
  security::PolicyPtr policy_;  // composed MayI policy (null = allow)
  std::uint64_t exceptions_ = 0;
};

}  // namespace legion::core
