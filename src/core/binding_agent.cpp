#include "core/binding_agent.hpp"

#include "core/active_object.hpp"
#include "core/well_known.hpp"

namespace legion::core {

void BindingAgentImpl::SaveState(Writer& w) const { config_.Serialize(w); }

Status BindingAgentImpl::RestoreState(Reader& r) {
  if (r.exhausted()) return OkStatus();  // default-configured agent
  config_ = BindingAgentConfig::Deserialize(r);
  if (!r.ok()) return InvalidArgumentError("bad binding agent state");
  cache_.reset_capacity(config_.cache_capacity);
  return OkStatus();
}

Result<Buffer> BindingAgentImpl::agent_call(ObjectContext& ctx,
                                            const Binding& target,
                                            std::string_view method,
                                            Buffer args) {
  return ctx.shell.resolver().call_binding(target, method, args,
                                           ctx.outgoing_env(),
                                           rt::Messenger::kDefaultTimeoutUs);
}

Result<Binding> BindingAgentImpl::resolve_class(ObjectContext& ctx,
                                                const Loid& class_loid,
                                                bool bypass_cache,
                                                const Binding* stale) {
  // The recursion of Section 4.1.3 terminates at LegionClass itself, whose
  // binding is part of every object's persistent state.
  if (class_loid == ctx.shell.handles().legion_class.loid) {
    return ctx.shell.handles().legion_class;
  }
  if (!bypass_cache && stale == nullptr) {
    if (auto cached = cache_.get(class_loid, ctx.shell.now())) {
      ++stats_.cache_hits;
      return *cached;
    }
  }
  // The final GetBinding hop carries the refresh evidence when we have it.
  wire::GetBindingRequest get;
  get.loid = class_loid;
  if (stale != nullptr) {
    get.mode = wire::GetBindingMode::kRefresh;
    get.stale = *stale;
  } else {
    get.mode = wire::GetBindingMode::kByLoid;
  }

  Binding binding;
  if (config_.parent.valid()) {
    // Tree path (Section 5.2.2): class lookups climb toward the root,
    // "eliminating traffic from 'leaf' Binding Agents to LegionClass".
    ++stats_.parent_consults;
    LEGION_ASSIGN_OR_RETURN(
        Buffer raw,
        agent_call(ctx, config_.parent, methods::kGetBinding, get.to_buffer()));
    LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                            wire::BindingReply::from_buffer(raw));
    binding = std::move(reply.binding);
  } else {
    // Root: consult LegionClass (Section 4.1.3).
    ++stats_.legion_class_consults;
    wire::LoidRequest req{class_loid};
    LEGION_ASSIGN_OR_RETURN(
        Buffer raw, agent_call(ctx, ctx.shell.handles().legion_class,
                               methods::kLocateClass, req.to_buffer()));
    LEGION_ASSIGN_OR_RETURN(wire::LocateClassReply located,
                            wire::LocateClassReply::from_buffer(raw));
    if (located.kind == wire::LocateClassReply::Kind::kBinding) {
      binding = std::move(located.binding);
    } else {
      // "LegionClass can point them toward C": resolve the creator, then
      // ask it for the subclass's binding (refresh-forwarding as needed —
      // a deactivated class object is reactivated by its creator here).
      LEGION_ASSIGN_OR_RETURN(Binding creator,
                              resolve_class(ctx, located.creator, false));
      ++stats_.class_consults;
      Result<Buffer> raw2 =
          agent_call(ctx, creator, methods::kGetBinding, get.to_buffer());
      if (!raw2.ok() && raw2.status().code() == StatusCode::kStaleBinding) {
        // The creator itself moved: one level of recursive repair.
        const Binding stale_creator = creator;
        LEGION_ASSIGN_OR_RETURN(
            creator,
            resolve_class(ctx, located.creator, true, &stale_creator));
        ++stats_.class_consults;
        raw2 = agent_call(ctx, creator, methods::kGetBinding, get.to_buffer());
      }
      if (!raw2.ok()) return raw2.status();
      LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                              wire::BindingReply::from_buffer(*raw2));
      binding = std::move(reply.binding);
    }
  }
  cache_.put(binding);
  return binding;
}

Result<Binding> BindingAgentImpl::resolve(ObjectContext& ctx,
                                          const Loid& target) {
  if (auto cached = cache_.get(target, ctx.shell.now())) {
    ++stats_.cache_hits;
    return *cached;
  }
  if (target.names_class_object()) {
    return resolve_class(ctx, target, /*bypass_cache=*/false);
  }

  // Instance path: the responsible class's LOID is derived by zeroing the
  // class-specific field (Section 4.1.3), then the class "must be able to
  // return a binding if one exists".
  LEGION_ASSIGN_OR_RETURN(
      Binding class_binding,
      resolve_class(ctx, target.responsible_class(), /*bypass_cache=*/false));
  ++stats_.class_consults;
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kByLoid;
  req.loid = target;
  Result<Buffer> raw =
      agent_call(ctx, class_binding, methods::kGetBinding, req.to_buffer());
  if (!raw.ok() && raw.status().code() == StatusCode::kStaleBinding) {
    // The class itself moved or went inert (rare: "class objects will not
    // migrate frequently"). Repair it with refresh evidence and retry.
    const Binding stale_class = class_binding;
    LEGION_ASSIGN_OR_RETURN(class_binding,
                            resolve_class(ctx, target.responsible_class(),
                                          /*bypass_cache=*/true, &stale_class));
    ++stats_.class_consults;
    raw = agent_call(ctx, class_binding, methods::kGetBinding, req.to_buffer());
  }
  if (!raw.ok()) return raw.status();
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(*raw));
  cache_.put(reply.binding);
  return reply.binding;
}

Result<Binding> BindingAgentImpl::refresh(ObjectContext& ctx,
                                          const wire::GetBindingRequest& req) {
  // "Passing a binding requests that the Binding Agent return a different
  //  binding than the one passed as a parameter" (Section 3.6).
  cache_.invalidate_exact(req.stale);

  if (req.loid.names_class_object()) {
    // Forward the refresh down the responsibility chain: the class's
    // creator NILs its row and reactivates the class.
    return resolve_class(ctx, req.loid, /*bypass_cache=*/true, &req.stale);
  }
  LEGION_ASSIGN_OR_RETURN(
      Binding class_binding,
      resolve_class(ctx, req.loid.responsible_class(), /*bypass_cache=*/false));
  ++stats_.class_consults;
  // Forward the refresh so the class can NIL its own stale Object Address
  // and consult the magistrate (Section 4.1.4).
  Result<Buffer> raw =
      agent_call(ctx, class_binding, methods::kGetBinding, req.to_buffer());
  if (!raw.ok() && raw.status().code() == StatusCode::kStaleBinding) {
    // The class itself is gone (deactivated or migrated): repair the class
    // binding with refresh evidence, then retry the instance lookup.
    const Binding stale_class = class_binding;
    LEGION_ASSIGN_OR_RETURN(class_binding,
                            resolve_class(ctx, req.loid.responsible_class(),
                                          /*bypass_cache=*/true, &stale_class));
    ++stats_.class_consults;
    raw = agent_call(ctx, class_binding, methods::kGetBinding, req.to_buffer());
  }
  if (!raw.ok()) return raw.status();
  LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                          wire::BindingReply::from_buffer(*raw));
  cache_.put(reply.binding);
  return reply.binding;
}

void BindingAgentImpl::RegisterMethods(MethodTable& table) {
  table.add(methods::kGetBinding,
            [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
              auto req = wire::GetBindingRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad GetBinding");
              ++stats_.requests;
              Result<Binding> binding =
                  req.mode == wire::GetBindingMode::kRefresh
                      ? refresh(ctx, req)
                      : resolve(ctx, req.loid);
              if (!binding.ok()) return binding.status();
              return wire::BindingReply{std::move(*binding)}.to_buffer();
            });
  table.add(methods::kAddBinding,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::AddBindingRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad AddBinding");
              // "used ... to explicitly propagate binding information for
              //  performance purposes" (Section 3.6).
              cache_.put(std::move(req.binding));
              return Buffer{};
            });
  table.add(methods::kInvalidateBinding,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              auto req = wire::InvalidateBindingRequest::Deserialize(args);
              if (!args.ok()) return InvalidArgumentError("bad Invalidate");
              if (req.mode == wire::GetBindingMode::kByLoid) {
                cache_.invalidate(req.loid);
              } else {
                cache_.invalidate_exact(req.binding);
              }
              return Buffer{};
            });
}

}  // namespace legion::core
