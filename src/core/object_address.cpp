#include "core/object_address.hpp"

#include <algorithm>
#include <numeric>

namespace legion::core {

std::string_view to_string(AddressSemantic s) {
  switch (s) {
    case AddressSemantic::kAll: return "all";
    case AddressSemantic::kRandomOne: return "random-one";
    case AddressSemantic::kKOfN: return "k-of-n";
    case AddressSemantic::kFirst: return "first";
  }
  return "unknown";
}

std::vector<std::size_t> ObjectAddress::select_targets(Rng& rng) const {
  std::vector<std::size_t> out;
  if (elements_.empty()) return out;
  switch (semantic_) {
    case AddressSemantic::kFirst:
      out.push_back(0);
      break;
    case AddressSemantic::kRandomOne:
      out.push_back(static_cast<std::size_t>(rng.below(elements_.size())));
      break;
    case AddressSemantic::kAll:
      out.resize(elements_.size());
      std::iota(out.begin(), out.end(), 0);
      break;
    case AddressSemantic::kKOfN: {
      // Partial Fisher-Yates over the index vector.
      std::vector<std::size_t> idx(elements_.size());
      std::iota(idx.begin(), idx.end(), 0);
      const std::size_t take =
          std::min<std::size_t>(std::max<std::uint32_t>(k_, 1), idx.size());
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.below(idx.size() - i));
        std::swap(idx[i], idx[j]);
      }
      out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(take));
      break;
    }
  }
  return out;
}

std::string ObjectAddress::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (i > 0) out += ",";
    out += elements_[i].to_string();
  }
  out += "]/";
  out += std::string(core::to_string(semantic_));
  if (semantic_ == AddressSemantic::kKOfN) {
    out += ":" + std::to_string(k_);
  }
  return out;
}

void ObjectAddress::Serialize(Writer& w) const {
  WriteVector(w, elements_);
  w.u8(static_cast<std::uint8_t>(semantic_));
  w.u32(k_);
}

ObjectAddress ObjectAddress::Deserialize(Reader& r) {
  ObjectAddress a;
  a.elements_ = ReadVector<ObjectAddressElement>(r);
  a.semantic_ = static_cast<AddressSemantic>(r.u8());
  a.k_ = r.u32();
  return a;
}

}  // namespace legion::core
