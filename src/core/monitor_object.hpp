// The MonitorObject: the fleet metrics plane's well-known sink.
//
// Not in the paper — this is the observability companion of the Section
// 4.1.4 failure machinery. Every Host Object periodically ships a delta
// MetricsSnapshot here (methods::kReportMetrics); the monitor merges them
// per host (obs::FleetMonitor) and answers methods::kGetFleet with per-host
// rollups plus fleet-wide per-method tail latency. Slow/suspect verdicts are
// also published as registry gauges so the recovery sweep can consult them
// without calling in.
#pragma once

#include "core/object_impl.hpp"
#include "core/wire.hpp"
#include "obs/monitor.hpp"

namespace legion::core {

inline constexpr std::string_view kMonitorObjectImpl = "legion.monitor";

// Wire shape of a kGetFleet reply.
struct FleetReply {
  std::vector<obs::FleetRow> hosts;
  std::vector<obs::MethodRow> methods;

  void Serialize(Writer& w) const;
  static FleetReply Deserialize(Reader& r);
  [[nodiscard]] Buffer to_buffer() const {
    Buffer out;
    Writer w(out);
    Serialize(w);
    return out;
  }
  [[nodiscard]] static Result<FleetReply> from_buffer(const Buffer& buf) {
    Reader r(buf);
    FleetReply reply = Deserialize(r);
    if (!r.ok()) return InvalidArgumentError("malformed FleetReply");
    return reply;
  }
};

class MonitorObjectImpl final : public ObjectImpl {
 public:
  explicit MonitorObjectImpl(obs::Registry& registry) : monitor_(registry) {}

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kMonitorObjectImpl);
  }
  void RegisterMethods(MethodTable& table) override;

  // Direct access for same-process collaborators (shell commands, tests).
  [[nodiscard]] obs::FleetMonitor& fleet() { return monitor_; }

 private:
  obs::FleetMonitor monitor_;
};

}  // namespace legion::core
