// Policy combinators that depend on the core object model.
//
// The paper makes every object responsible for its own MayI() (Section 2.4)
// — but an object that refuses *everyone* also refuses the Host Object and
// Magistrate that deactivate and migrate it, making it unmanageable. The
// conventional pattern is therefore: admit the management plane for the
// object-mandatory state-capture call, enforce the user policy everywhere
// else.
#pragma once

#include "core/well_known.hpp"
#include "security/policy.hpp"

namespace legion::core {

class ManageablePolicy final : public security::SecurityPolicy {
 public:
  explicit ManageablePolicy(security::PolicyPtr inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple& env) const override {
    if (method == methods::kSaveState && is_management_plane(env)) {
      return OkStatus();
    }
    return inner_ ? inner_->MayI(method, env) : OkStatus();
  }
  [[nodiscard]] std::string name() const override { return "manageable"; }

 private:
  static bool is_management_plane(const rt::EnvTriple& env) {
    const std::uint64_t cls = env.calling_agent.class_id();
    return cls == kLegionHostClassId || cls == kLegionMagistrateClassId;
  }

  security::PolicyPtr inner_;
};

[[nodiscard]] inline security::PolicyPtr MakeManageable(
    security::PolicyPtr inner) {
  return std::make_shared<ManageablePolicy>(std::move(inner));
}

}  // namespace legion::core
