#include "sched/placement.hpp"

#include <limits>
#include <vector>

namespace legion::sched {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::vector<std::size_t> accepting_indices(
    std::span<const HostCandidate> candidates) {
  std::vector<std::size_t> out;
  out.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].accepting) out.push_back(i);
  }
  return out;
}
}  // namespace

std::size_t RandomPlacement::pick(std::span<const HostCandidate> candidates,
                                  Rng& rng) {
  const auto ok = accepting_indices(candidates);
  if (ok.empty()) return kNone;
  return ok[rng.below(ok.size())];
}

std::size_t RoundRobinPlacement::pick(std::span<const HostCandidate> candidates,
                                      Rng& /*rng*/) {
  const auto ok = accepting_indices(candidates);
  if (ok.empty()) return kNone;
  return ok[next_++ % ok.size()];
}

std::size_t LeastLoadedPlacement::pick(std::span<const HostCandidate> candidates,
                                       Rng& /*rng*/) {
  std::size_t best = kNone;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].accepting) continue;
    if (candidates[i].cpu_load < best_load) {
      best_load = candidates[i].cpu_load;
      best = i;
    }
  }
  return best;
}

std::unique_ptr<PlacementPolicy> MakePolicy(const std::string& name) {
  if (name == "random") return std::make_unique<RandomPlacement>();
  if (name == "round-robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "least-loaded") return std::make_unique<LeastLoadedPlacement>();
  return nullptr;
}

}  // namespace legion::sched
