// Scheduling hooks, paper Section 3.7.
//
// "Scheduling is intentionally left out of the core object model, except for
//  a few 'hooks' ... that allow other Legion objects to suggest scheduling
//  policies to Magistrates."
//
// A PlacementPolicy is the decision procedure a Scheduling Agent runs over
// the candidate Host Objects of a jurisdiction. Magistrates have "some
// default scheduling behavior" (round-robin here); richer policies live
// outside the magistrate, exactly as the paper prescribes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "base/loid.hpp"
#include "base/rng.hpp"
#include "base/types.hpp"

namespace legion::sched {

// A snapshot of one candidate host, as reported by its Host Object's
// GetState() (paper Section 3.9).
struct HostCandidate {
  Loid host_object;
  HostId host;
  double cpu_load = 0.0;       // active objects / capacity
  std::uint32_t active_objects = 0;
  double capacity = 1.0;
  bool accepting = true;       // SetCPULoad/SetMemoryUsage limits not exceeded
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Returns the index of the chosen candidate, or SIZE_MAX if none is
  // acceptable. Candidates with accepting == false must not be chosen.
  [[nodiscard]] virtual std::size_t pick(
      std::span<const HostCandidate> candidates, Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class RandomPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(std::span<const HostCandidate> candidates,
                                 Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "random"; }
};

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(std::span<const HostCandidate> candidates,
                                 Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(std::span<const HostCandidate> candidates,
                                 Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "least-loaded"; }
};

[[nodiscard]] std::unique_ptr<PlacementPolicy> MakePolicy(
    const std::string& name);

}  // namespace legion::sched
