// A jurisdiction's aggregate persistent storage.
//
// Paper Section 3.1: "all of a Jurisdiction's persistent storage space must
// be visible from each of its hosts" — so a Vault is shared by every host in
// the jurisdiction. A VaultSet groups the jurisdiction's disks (Figure 11
// shows three disks visible from three hosts) and places new representations
// across them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/buffer.hpp"
#include "base/status.hpp"
#include "base/types.hpp"
#include "persist/opr.hpp"

namespace legion::persist {

// One "disk": a flat namespace of named byte sequences. Optionally backed
// by a real directory, in which case every write/erase is mirrored to disk
// and load_backing() recovers the namespace after a restart.
class Vault {
 public:
  explicit Vault(DiskId id, std::string name) : id_(id), name_(std::move(name)) {}

  [[nodiscard]] DiskId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  Status write(const std::string& path, Buffer bytes);
  [[nodiscard]] Result<Buffer> read(const std::string& path) const;
  Status erase(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list() const;
  [[nodiscard]] std::size_t count() const { return files_.size(); }
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_stored_; }

  // Mirrors this vault into `directory` (created if missing): the current
  // contents are flushed immediately, subsequent writes/erases follow.
  Status attach_backing(const std::string& directory);
  // Replaces the in-memory namespace with the backing directory's contents.
  Status load_backing();
  [[nodiscard]] bool backed() const { return !backing_dir_.empty(); }

 private:
  Status mirror_write(const std::string& path, const Buffer& bytes) const;
  Status mirror_erase(const std::string& path) const;
  [[nodiscard]] std::string file_for(const std::string& path) const;

  DiskId id_;
  std::string name_;
  std::map<std::string, Buffer> files_;
  std::uint64_t bytes_stored_ = 0;
  std::string backing_dir_;
};

// Filesystem-safe encoding of vault paths (they may contain '/' and ':').
[[nodiscard]] std::string EncodeVaultPath(const std::string& path);
[[nodiscard]] Result<std::string> DecodeVaultPath(const std::string& encoded);

// The aggregate storage of one jurisdiction.
class VaultSet {
 public:
  DiskId add_vault(std::string name);

  // Backs every vault (current and future reads) under
  // `directory`/<vault-name>/.
  Status attach_backing(const std::string& directory);

  [[nodiscard]] Vault* vault(DiskId id);
  [[nodiscard]] const Vault* vault(DiskId id) const;
  [[nodiscard]] std::size_t size() const { return vaults_.size(); }

  // Stores an OPR, choosing the least-full disk, and returns where it went.
  Result<PersistentAddress> store(const Opr& opr);
  [[nodiscard]] Result<Opr> load(const PersistentAddress& addr) const;
  Status remove(const PersistentAddress& addr);
  [[nodiscard]] bool holds(const PersistentAddress& addr) const;

 private:
  std::vector<std::unique_ptr<Vault>> vaults_;
  std::uint64_t next_file_ = 1;
};

}  // namespace legion::persist
