#include "persist/opr.hpp"

// Header-only; TU anchors the target.
