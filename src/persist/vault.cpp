#include "persist/vault.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>

namespace legion::persist {

namespace fs = std::filesystem;

namespace {
// Suffix of in-flight mirror writes. Contains '#', which EncodeVaultPath
// always escapes, so no committed entry's filename can ever end with it.
constexpr char kTempSuffix[] = "#tmp";

bool IsTempFile(const std::string& name) {
  const std::string_view suffix = kTempSuffix;
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

std::string EncodeVaultPath(const std::string& path) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    if (safe) {
      out += c;
    } else {
      out += '%';
      out += kHex[static_cast<unsigned char>(c) >> 4];
      out += kHex[static_cast<unsigned char>(c) & 0xF];
    }
  }
  return out;
}

Result<std::string> DecodeVaultPath(const std::string& encoded) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      out += encoded[i];
      continue;
    }
    if (i + 2 >= encoded.size()) return InvalidArgumentError("truncated escape");
    const int hi = hex(encoded[i + 1]);
    const int lo = hex(encoded[i + 2]);
    if (hi < 0 || lo < 0) return InvalidArgumentError("bad escape");
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

std::string Vault::file_for(const std::string& path) const {
  return backing_dir_ + "/" + EncodeVaultPath(path);
}

Status Vault::mirror_write(const std::string& path, const Buffer& bytes) const {
  if (!backed()) return OkStatus();
  // Write-then-rename so a crash mid-write leaves the previous version
  // intact: a torn OPR on disk is exactly what reactivation would restore
  // from. '#' is always %-escaped by EncodeVaultPath, so the temp suffix can
  // never collide with a real entry and load_backing() skips strays.
  const std::string final_name = file_for(path);
  const std::string tmp_name = final_name + kTempSuffix;
  {
    std::ofstream out(tmp_name, std::ios::binary | std::ios::trunc);
    if (!out) return InternalError("cannot open backing file for " + path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ignored;
      fs::remove(tmp_name, ignored);
      return InternalError("short write to backing file");
    }
  }
  std::error_code ec;
  fs::rename(tmp_name, final_name, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp_name, ignored);
    return InternalError("cannot publish backing file: " + ec.message());
  }
  return OkStatus();
}

Status Vault::mirror_erase(const std::string& path) const {
  if (!backed()) return OkStatus();
  std::error_code ec;
  fs::remove(file_for(path), ec);
  return ec ? InternalError("cannot remove backing file: " + ec.message())
            : OkStatus();
}

Status Vault::attach_backing(const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return InternalError("cannot create " + directory);
  backing_dir_ = directory;
  for (const auto& [path, bytes] : files_) {
    LEGION_RETURN_IF_ERROR(mirror_write(path, bytes));
  }
  return OkStatus();
}

Status Vault::load_backing() {
  if (!backed()) return FailedPreconditionError("vault has no backing");
  files_.clear();
  bytes_stored_ = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(backing_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    // An in-flight mirror write that never got renamed is at best a torn
    // copy of something we already hold a good version of.
    if (IsTempFile(filename)) continue;
    LEGION_ASSIGN_OR_RETURN(std::string path, DecodeVaultPath(filename));
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    bytes_stored_ += bytes.size();
    files_.emplace(std::move(path), Buffer{std::move(bytes)});
  }
  return ec ? InternalError("cannot scan backing dir: " + ec.message())
            : OkStatus();
}

Status Vault::write(const std::string& path, Buffer bytes) {
  if (path.empty()) return InvalidArgumentError("empty path");
  LEGION_RETURN_IF_ERROR(mirror_write(path, bytes));
  auto it = files_.find(path);
  if (it != files_.end()) {
    bytes_stored_ -= it->second.size();
    it->second = std::move(bytes);
    bytes_stored_ += it->second.size();
  } else {
    bytes_stored_ += bytes.size();
    files_.emplace(path, std::move(bytes));
  }
  return OkStatus();
}

Result<Buffer> Vault::read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no such file: " + path);
  return it->second;
}

Status Vault::erase(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no such file: " + path);
  LEGION_RETURN_IF_ERROR(mirror_erase(path));
  bytes_stored_ -= it->second.size();
  files_.erase(it);
  return OkStatus();
}

bool Vault::exists(const std::string& path) const {
  return files_.contains(path);
}

std::vector<std::string> Vault::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

DiskId VaultSet::add_vault(std::string name) {
  const DiskId id{static_cast<std::uint32_t>(vaults_.size() + 1)};
  vaults_.push_back(std::make_unique<Vault>(id, std::move(name)));
  return id;
}

Status VaultSet::attach_backing(const std::string& directory) {
  for (auto& vault : vaults_) {
    LEGION_RETURN_IF_ERROR(
        vault->attach_backing(directory + "/" + EncodeVaultPath(vault->name())));
  }
  return OkStatus();
}

Vault* VaultSet::vault(DiskId id) {
  if (!id.valid() || id.value > vaults_.size()) return nullptr;
  return vaults_[id.value - 1].get();
}
const Vault* VaultSet::vault(DiskId id) const {
  if (!id.valid() || id.value > vaults_.size()) return nullptr;
  return vaults_[id.value - 1].get();
}

Result<PersistentAddress> VaultSet::store(const Opr& opr) {
  if (vaults_.empty()) {
    return FailedPreconditionError("jurisdiction has no persistent storage");
  }
  auto it = std::min_element(vaults_.begin(), vaults_.end(),
                             [](const auto& a, const auto& b) {
                               return a->bytes_stored() < b->bytes_stored();
                             });
  Vault& v = **it;
  PersistentAddress addr{v.id(),
                         "opr/" + opr.loid.to_string() + "." +
                             std::to_string(next_file_++)};
  LEGION_RETURN_IF_ERROR(v.write(addr.path, opr.to_bytes()));
  return addr;
}

Result<Opr> VaultSet::load(const PersistentAddress& addr) const {
  const Vault* v = vault(addr.disk);
  if (v == nullptr) return NotFoundError("no such disk");
  LEGION_ASSIGN_OR_RETURN(Buffer bytes, v->read(addr.path));
  return Opr::from_bytes(bytes);
}

Status VaultSet::remove(const PersistentAddress& addr) {
  Vault* v = vault(addr.disk);
  if (v == nullptr) return NotFoundError("no such disk");
  return v->erase(addr.path);
}

bool VaultSet::holds(const PersistentAddress& addr) const {
  const Vault* v = vault(addr.disk);
  return v != nullptr && v->exists(addr.path);
}

}  // namespace legion::persist
