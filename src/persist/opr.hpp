// Object Persistent Representations, paper Section 3.1.1.
//
// "An Object Persistent Representation is a sequential set of bytes that
//  represents an Inert object, and that can be used by a Magistrate to
//  activate the object."
//
// An OPR here carries the object's LOID, the name of its implementation
// (standing in for "an executable file / the name of an executable" — see
// DESIGN.md substitutions), and the state produced by SaveState(). The whole
// thing round-trips through a flat byte buffer, as the paper requires.
#pragma once

#include <string>

#include "base/buffer.hpp"
#include "base/loid.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"
#include "base/types.hpp"

namespace legion::persist {

struct ObjectPersistentRepresentation {
  Loid loid;
  std::string implementation;  // key into the ImplementationRegistry
  Buffer state;                // output of SaveState()

  void Serialize(Writer& w) const {
    loid.Serialize(w);
    w.str(implementation);
    w.buffer(state);
  }
  static ObjectPersistentRepresentation Deserialize(Reader& r) {
    ObjectPersistentRepresentation opr;
    opr.loid = Loid::Deserialize(r);
    opr.implementation = r.str();
    opr.state = r.buffer();
    return opr;
  }

  [[nodiscard]] Buffer to_bytes() const {
    Buffer out;
    Writer w(out);
    Serialize(w);
    return out;
  }
  static Result<ObjectPersistentRepresentation> from_bytes(const Buffer& b) {
    Reader r(b);
    auto opr = Deserialize(r);
    if (!r.ok() || !r.exhausted()) {
      return InvalidArgumentError("malformed OPR bytes");
    }
    return opr;
  }
};

using Opr = ObjectPersistentRepresentation;

// "The Object Persistent Address of an Inert object ... will typically be a
//  file name, and will only be meaningful within the Jurisdiction in which
//  it resides."
struct PersistentAddress {
  DiskId disk;
  std::string path;

  [[nodiscard]] bool valid() const { return disk.valid() && !path.empty(); }

  void Serialize(Writer& w) const {
    w.u32(disk.value);
    w.str(path);
  }
  static PersistentAddress Deserialize(Reader& r) {
    PersistentAddress a;
    a.disk = DiskId{r.u32()};
    a.path = r.str();
    return a;
  }

  friend bool operator==(const PersistentAddress& a,
                         const PersistentAddress& b) {
    return a.disk == b.disk && a.path == b.path;
  }
};

}  // namespace legion::persist
