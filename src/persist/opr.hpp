// Object Persistent Representations, paper Section 3.1.1.
//
// "An Object Persistent Representation is a sequential set of bytes that
//  represents an Inert object, and that can be used by a Magistrate to
//  activate the object."
//
// An OPR here carries the object's LOID, the name of its implementation,
// the state produced by SaveState(), and — per the paper's "an executable
// file / the name of an executable" reading of §3.1.1 — optionally the path
// of a worker executable plus the Vault checkpoint the state was loaded
// from. With the executable field set, a magistrate can activate the object
// as its own OS process (ProcessRuntime) without ever having linked against
// the object's code. The whole thing round-trips through a flat byte
// buffer, as the paper requires.
#pragma once

#include <string>

#include "base/buffer.hpp"
#include "base/loid.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"
#include "base/types.hpp"

namespace legion::persist {

// "The Object Persistent Address of an Inert object ... will typically be a
//  file name, and will only be meaningful within the Jurisdiction in which
//  it resides."
struct PersistentAddress {
  DiskId disk;
  std::string path;

  [[nodiscard]] bool valid() const { return disk.valid() && !path.empty(); }

  void Serialize(Writer& w) const {
    w.u32(disk.value);
    w.str(path);
  }
  static PersistentAddress Deserialize(Reader& r) {
    PersistentAddress a;
    a.disk = DiskId{r.u32()};
    a.path = r.str();
    return a;
  }

  friend bool operator==(const PersistentAddress& a,
                         const PersistentAddress& b) {
    return a.disk == b.disk && a.path == b.path;
  }
};

struct ObjectPersistentRepresentation {
  // Version sentinel for the serialized form. A v1 OPR begins with the
  // LOID's u64 class id — a small integer — so this reserved value can
  // never alias a real v1 byte stream. v2 streams are
  //   sentinel | u32 version | v1 fields | executable | checkpoint
  // and to_bytes() emits v1 whenever the v2 fields are empty, keeping every
  // pre-existing OPR byte stream (vault contents, bench fixtures) and its
  // hash identical.
  static constexpr std::uint64_t kVersionSentinel = 0xFFFF'FFFF'FFFF'FF50ull;
  static constexpr std::uint32_t kVersion2 = 2;

  Loid loid;
  std::string implementation;  // key into the ImplementationRegistry
  Buffer state;                // output of SaveState()
  // v2: path of a worker binary able to host this object as its own OS
  // process. Empty = in-process activation only (the v1 behavior).
  std::string executable;
  // v2: the Vault checkpoint this OPR's state was loaded from (invalid when
  // the state is creation-time, not checkpointed).
  PersistentAddress checkpoint;

  [[nodiscard]] bool has_v2_fields() const {
    return !executable.empty() || checkpoint.valid();
  }

  void Serialize(Writer& w) const {
    if (has_v2_fields()) {
      w.u64(kVersionSentinel);
      w.u32(kVersion2);
    }
    loid.Serialize(w);
    w.str(implementation);
    w.buffer(state);
    if (has_v2_fields()) {
      w.str(executable);
      checkpoint.Serialize(w);
    }
  }
  static ObjectPersistentRepresentation Deserialize(Reader& r) {
    ObjectPersistentRepresentation opr;
    std::uint32_t version = 1;
    const std::uint64_t first = r.u64();
    if (first == kVersionSentinel) {
      version = r.u32();
      if (version < 2) {
        // A sentinel-prefixed stream claiming v1 is corrupt, not legacy.
        r.mark_failed();
        return opr;
      }
      opr.loid = Loid::Deserialize(r);
    } else {
      // v1: `first` was the LOID's class id; the rest of the LOID follows.
      const std::uint64_t class_specific = r.u64();
      opr.loid = Loid(first, class_specific, r.bytes());
    }
    opr.implementation = r.str();
    opr.state = r.buffer();
    if (version >= 2) {
      opr.executable = r.str();
      opr.checkpoint = PersistentAddress::Deserialize(r);
    }
    return opr;
  }

  [[nodiscard]] Buffer to_bytes() const {
    Buffer out;
    Writer w(out);
    Serialize(w);
    return out;
  }
  static Result<ObjectPersistentRepresentation> from_bytes(const Buffer& b) {
    Reader r(b);
    auto opr = Deserialize(r);
    if (!r.ok() || !r.exhausted()) {
      return InvalidArgumentError("malformed OPR bytes");
    }
    return opr;
  }
};

using Opr = ObjectPersistentRepresentation;

}  // namespace legion::persist
