#include "idl/compiler.hpp"

#include "core/well_known.hpp"
#include "naming/context.hpp"

namespace legion::idl {

Result<core::wire::CreateReply> CompileInterface(
    core::Client& client, const ParsedInterface& parsed,
    const CompileOptions& options) {
  if (parsed.interface.name().empty()) {
    return InvalidArgumentError("interface has no name");
  }

  // Map base names to class LOIDs through the context.
  std::vector<Loid> bases;
  for (const std::string& base_name : parsed.bases) {
    if (!options.naming_context.valid()) {
      return FailedPreconditionError(
          "interface has bases but no naming context was supplied");
    }
    auto base = naming::Lookup(client, options.naming_context, base_name);
    if (!base.ok()) {
      return NotFoundError("base '" + base_name +
                           "' not found in the compilation context");
    }
    if (!base->names_class_object()) {
      return InvalidArgumentError("base '" + base_name +
                                  "' does not name a class object");
    }
    bases.push_back(*base);
  }

  // kind-of: derive from the first base (or LegionObject).
  core::wire::DeriveRequest derive;
  derive.name = parsed.interface.name();
  derive.instance_impl = options.instance_impl;
  derive.extra_interface = parsed.interface;
  derive.flags = options.flags;
  derive.candidate_magistrates = options.candidate_magistrates;
  const Loid parent = bases.empty() ? core::LegionObjectLoid() : bases[0];
  LEGION_ASSIGN_OR_RETURN(core::wire::CreateReply reply,
                          client.derive(parent, derive));

  // inherits-from: wire the remaining bases at run time (Section 2.1.1's
  // two-step multiple inheritance).
  for (std::size_t i = 1; i < bases.size(); ++i) {
    LEGION_RETURN_IF_ERROR(client.inherit_from(reply.loid, bases[i]));
  }

  // Publish the class under its name for later compilation units.
  if (options.naming_context.valid()) {
    LEGION_RETURN_IF_ERROR(naming::Bind(client, options.naming_context,
                                        parsed.interface.name(), reply.loid));
  }
  return reply;
}

Result<std::vector<core::wire::CreateReply>> CompileText(
    core::Client& client, std::string_view source,
    const CompileOptions& options) {
  LEGION_ASSIGN_OR_RETURN(std::vector<ParsedInterface> parsed, Parse(source));
  std::vector<core::wire::CreateReply> out;
  out.reserve(parsed.size());
  for (const ParsedInterface& interface : parsed) {
    LEGION_ASSIGN_OR_RETURN(core::wire::CreateReply reply,
                            CompileInterface(client, interface, options));
    out.push_back(std::move(reply));
  }
  return out;
}

}  // namespace legion::idl
