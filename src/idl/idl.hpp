// A small Interface Description Language.
//
// Paper Section 2 (footnote): "Legion class interfaces can be described in
// an Interface Description Language... At least two different IDL's will be
// supported." This module provides the parsing half of what a Legion-aware
// compiler would do: turn interface text into InterfaceDescriptions (and
// base-class names for the inherits-from wiring).
//
// Grammar (two dialects share one method syntax — the paper's footnote
// promises "at least two different IDL's": the CORBA IDL and MPL):
//   file      := interface*
//   interface := head NAME [':' NAME {',' NAME}] '{' method* '}' [';']
//   head      := 'interface'                     (CORBA-style)
//              | ['persistent'] 'mentat' 'class' (MPL-style)
//   method    := TYPE NAME '(' [param {',' param}] ')' ';'
//   param     := TYPE [NAME]
//
// '//' line comments and '/* */' block comments are ignored.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "core/interface.hpp"

namespace legion::idl {

struct ParsedInterface {
  core::InterfaceDescription interface;
  std::vector<std::string> bases;  // names after ':' — inherits-from targets
};

// Parses IDL text; errors carry 1-based line:column positions.
Result<std::vector<ParsedInterface>> Parse(std::string_view source);

// Convenience: parse text expected to contain exactly one interface.
Result<ParsedInterface> ParseSingle(std::string_view source);

// Renders an interface back to IDL text (inverse of Parse, modulo
// whitespace) — useful for GetInterface displays.
std::string Render(const core::InterfaceDescription& interface);

}  // namespace legion::idl
