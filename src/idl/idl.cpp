#include "idl/idl.hpp"

#include <cctype>

namespace legion::idl {

namespace {

enum class TokenKind : std::uint8_t {
  kIdent,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kColon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') advance();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        LEGION_RETURN_IF_ERROR(skip_block_comment());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(lex_ident());
        continue;
      }
      Token tok{TokenKind::kEnd, std::string(1, c), line_, column_};
      switch (c) {
        case '{': tok.kind = TokenKind::kLBrace; break;
        case '}': tok.kind = TokenKind::kRBrace; break;
        case '(': tok.kind = TokenKind::kLParen; break;
        case ')': tok.kind = TokenKind::kRParen; break;
        case ',': tok.kind = TokenKind::kComma; break;
        case ';': tok.kind = TokenKind::kSemicolon; break;
        case ':': tok.kind = TokenKind::kColon; break;
        default:
          return error("unexpected character '" + std::string(1, c) + "'");
      }
      tokens.push_back(tok);
      advance();
    }
    tokens.push_back(Token{TokenKind::kEnd, "", line_, column_});
    return tokens;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  void advance() {
    if (source_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }
  Token lex_ident() {
    Token tok{TokenKind::kIdent, "", line_, column_};
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_')) {
      tok.text += source_[pos_];
      advance();
    }
    return tok;
  }
  Status skip_block_comment() {
    const int start_line = line_;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < source_.size()) {
      if (source_[pos_] == '*' && peek(1) == '/') {
        advance();
        advance();
        return OkStatus();
      }
      advance();
    }
    return InvalidArgumentError("unterminated block comment starting at line " +
                                std::to_string(start_line));
  }
  [[nodiscard]] Status error(const std::string& message) const {
    return InvalidArgumentError(std::to_string(line_) + ":" +
                                std::to_string(column_) + ": " + message);
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<ParsedInterface>> run() {
    std::vector<ParsedInterface> out;
    while (!at(TokenKind::kEnd)) {
      LEGION_ASSIGN_OR_RETURN(ParsedInterface parsed, parse_interface());
      out.push_back(std::move(parsed));
    }
    return out;
  }

 private:
  Result<ParsedInterface> parse_interface() {
    // Two dialects (the paper's footnote: "At least two different IDL's
    // will be supported": the CORBA IDL and the Mentat Programming
    // Language):
    //   interface Name [: Base, ...] { ... };              (CORBA-style)
    //   [persistent] mentat class Name [: Base, ...] { ... };  (MPL-style)
    LEGION_ASSIGN_OR_RETURN(
        Token kw, expect(TokenKind::kIdent, "'interface' or 'mentat class'"));
    if (kw.text == "persistent") {
      LEGION_ASSIGN_OR_RETURN(kw, expect(TokenKind::kIdent, "'mentat'"));
      if (kw.text != "mentat") {
        return error(kw, "expected 'mentat' after 'persistent'");
      }
    }
    if (kw.text == "mentat") {
      LEGION_ASSIGN_OR_RETURN(Token cls, expect(TokenKind::kIdent, "'class'"));
      if (cls.text != "class") {
        return error(cls, "expected 'class' after 'mentat'");
      }
    } else if (kw.text != "interface") {
      return error(kw, "expected 'interface' or 'mentat class', found '" +
                           kw.text + "'");
    }
    LEGION_ASSIGN_OR_RETURN(Token name,
                            expect(TokenKind::kIdent, "interface name"));
    ParsedInterface parsed;
    parsed.interface.set_name(name.text);

    if (at(TokenKind::kColon)) {
      ++pos_;
      for (;;) {
        LEGION_ASSIGN_OR_RETURN(Token base,
                                expect(TokenKind::kIdent, "base name"));
        parsed.bases.push_back(base.text);
        if (!at(TokenKind::kComma)) break;
        ++pos_;
      }
    }
    LEGION_RETURN_IF_ERROR(expect(TokenKind::kLBrace, "'{'").status());
    while (!at(TokenKind::kRBrace)) {
      LEGION_ASSIGN_OR_RETURN(core::MethodSignature method, parse_method());
      if (parsed.interface.has_method(method.name)) {
        return error(current(), "duplicate method '" + method.name + "'");
      }
      parsed.interface.add_method(std::move(method));
    }
    ++pos_;  // '}'
    if (at(TokenKind::kSemicolon)) ++pos_;
    return parsed;
  }

  Result<core::MethodSignature> parse_method() {
    LEGION_ASSIGN_OR_RETURN(Token ret, expect(TokenKind::kIdent, "return type"));
    LEGION_ASSIGN_OR_RETURN(Token name, expect(TokenKind::kIdent, "method name"));
    LEGION_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('").status());

    core::MethodSignature method;
    method.return_type = ret.text;
    method.name = name.text;
    if (!at(TokenKind::kRParen)) {
      for (;;) {
        LEGION_ASSIGN_OR_RETURN(Token type,
                                expect(TokenKind::kIdent, "parameter type"));
        core::Parameter param;
        param.type = type.text;
        if (at(TokenKind::kIdent)) {
          param.name = current().text;
          ++pos_;
        }
        method.parameters.push_back(std::move(param));
        if (!at(TokenKind::kComma)) break;
        ++pos_;
      }
    }
    LEGION_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'").status());
    LEGION_RETURN_IF_ERROR(expect(TokenKind::kSemicolon, "';'").status());
    return method;
  }

  [[nodiscard]] const Token& current() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const {
    return current().kind == kind;
  }
  Result<Token> expect(TokenKind kind, std::string_view what) {
    if (!at(kind)) {
      return error(current(), "expected " + std::string(what) + ", found '" +
                                  (current().kind == TokenKind::kEnd
                                       ? "<end>"
                                       : current().text) +
                                  "'");
    }
    return tokens_[pos_++];
  }
  [[nodiscard]] static Status error(const Token& at, const std::string& msg) {
    return InvalidArgumentError(std::to_string(at.line) + ":" +
                                std::to_string(at.column) + ": " + msg);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::vector<ParsedInterface>> Parse(std::string_view source) {
  Lexer lexer(source);
  LEGION_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.run());
  Parser parser(std::move(tokens));
  return parser.run();
}

Result<ParsedInterface> ParseSingle(std::string_view source) {
  LEGION_ASSIGN_OR_RETURN(std::vector<ParsedInterface> all, Parse(source));
  if (all.size() != 1) {
    return InvalidArgumentError("expected exactly one interface, found " +
                                std::to_string(all.size()));
  }
  return std::move(all.front());
}

std::string Render(const core::InterfaceDescription& interface) {
  std::string out = "interface " + interface.name() + " {\n";
  for (const auto& method : interface.methods()) {
    out += "  " + method.to_string() + ";\n";
  }
  out += "};\n";
  return out;
}

}  // namespace legion::idl
