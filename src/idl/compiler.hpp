// The front half of a Legion-aware compiler (paper Section 4.1).
//
// "A user will write a Legion application program in her favorite language,
//  and will typically name Legion objects with string names. The program is
//  compiled within a particular 'context' by a Legion-aware compiler. The
//  compiler uses the context to map string names to LOID's."
//
// CompileInterface does exactly that for class definitions: base names in
// the IDL resolve through a naming context to class LOIDs; the first base
// becomes the Derive() parent (kind-of), further bases are wired with
// InheritFrom(); and the new class is bound back into the context under its
// interface name, ready for the next compilation unit.
#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"
#include "idl/idl.hpp"

namespace legion::idl {

struct CompileOptions {
  // Registry name of the implementation behind the interface ("" = inherit
  // the parent class's implementation).
  std::string instance_impl;
  // Context used to resolve base names and to bind the new class's name.
  Loid naming_context;
  std::uint8_t flags = 0;  // core::wire::kClassFlag*
  std::vector<Loid> candidate_magistrates;
};

// Compiles one parsed interface into a live Legion class object. Returns
// the new class's LOID and binding.
Result<core::wire::CreateReply> CompileInterface(core::Client& client,
                                                 const ParsedInterface& parsed,
                                                 const CompileOptions& options);

// Parses and compiles a whole IDL source in order (so later interfaces can
// inherit from earlier ones), using the same options for each.
Result<std::vector<core::wire::CreateReply>> CompileText(
    core::Client& client, std::string_view source,
    const CompileOptions& options);

}  // namespace legion::idl
