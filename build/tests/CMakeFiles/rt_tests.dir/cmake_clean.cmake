file(REMOVE_RECURSE
  "CMakeFiles/rt_tests.dir/rt/advance_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/advance_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/future_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/future_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/messenger_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/messenger_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/robustness_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/robustness_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/sim_runtime_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/sim_runtime_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/thread_runtime_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/thread_runtime_test.cpp.o.d"
  "rt_tests"
  "rt_tests.pdb"
  "rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
