file(REMOVE_RECURSE
  "CMakeFiles/tcp_tests.dir/rt/tcp_runtime_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/rt/tcp_runtime_test.cpp.o.d"
  "tcp_tests"
  "tcp_tests.pdb"
  "tcp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
