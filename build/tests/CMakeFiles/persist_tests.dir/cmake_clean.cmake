file(REMOVE_RECURSE
  "CMakeFiles/persist_tests.dir/persist/backing_test.cpp.o"
  "CMakeFiles/persist_tests.dir/persist/backing_test.cpp.o.d"
  "CMakeFiles/persist_tests.dir/persist/opr_test.cpp.o"
  "CMakeFiles/persist_tests.dir/persist/opr_test.cpp.o.d"
  "CMakeFiles/persist_tests.dir/persist/vault_test.cpp.o"
  "CMakeFiles/persist_tests.dir/persist/vault_test.cpp.o.d"
  "persist_tests"
  "persist_tests.pdb"
  "persist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
