# Empty dependencies file for security_tests.
# This may be replaced when dependencies are built.
