file(REMOVE_RECURSE
  "CMakeFiles/security_tests.dir/security/policy_test.cpp.o"
  "CMakeFiles/security_tests.dir/security/policy_test.cpp.o.d"
  "security_tests"
  "security_tests.pdb"
  "security_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
