file(REMOVE_RECURSE
  "CMakeFiles/base_tests.dir/base/buffer_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/buffer_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/loid_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/loid_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/rng_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/rng_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/serialize_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/serialize_test.cpp.o.d"
  "CMakeFiles/base_tests.dir/base/status_test.cpp.o"
  "CMakeFiles/base_tests.dir/base/status_test.cpp.o.d"
  "base_tests"
  "base_tests.pdb"
  "base_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
