# Empty dependencies file for idl_tests.
# This may be replaced when dependencies are built.
