file(REMOVE_RECURSE
  "CMakeFiles/idl_tests.dir/idl/compiler_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/compiler_test.cpp.o.d"
  "CMakeFiles/idl_tests.dir/idl/idl_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/idl_test.cpp.o.d"
  "idl_tests"
  "idl_tests.pdb"
  "idl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
