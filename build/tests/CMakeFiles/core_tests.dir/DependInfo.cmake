
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/active_object_test.cpp" "tests/CMakeFiles/core_tests.dir/core/active_object_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/active_object_test.cpp.o.d"
  "/root/repo/tests/core/binding_cache_test.cpp" "tests/CMakeFiles/core_tests.dir/core/binding_cache_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/binding_cache_test.cpp.o.d"
  "/root/repo/tests/core/binding_path_test.cpp" "tests/CMakeFiles/core_tests.dir/core/binding_path_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/binding_path_test.cpp.o.d"
  "/root/repo/tests/core/binding_ttl_test.cpp" "tests/CMakeFiles/core_tests.dir/core/binding_ttl_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/binding_ttl_test.cpp.o.d"
  "/root/repo/tests/core/class_definition_test.cpp" "tests/CMakeFiles/core_tests.dir/core/class_definition_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/class_definition_test.cpp.o.d"
  "/root/repo/tests/core/class_lifecycle_test.cpp" "tests/CMakeFiles/core_tests.dir/core/class_lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/class_lifecycle_test.cpp.o.d"
  "/root/repo/tests/core/clone_test.cpp" "tests/CMakeFiles/core_tests.dir/core/clone_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/clone_test.cpp.o.d"
  "/root/repo/tests/core/exceptions_and_scale_test.cpp" "tests/CMakeFiles/core_tests.dir/core/exceptions_and_scale_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/exceptions_and_scale_test.cpp.o.d"
  "/root/repo/tests/core/fault_injection_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fault_injection_test.cpp.o.d"
  "/root/repo/tests/core/heal_test.cpp" "tests/CMakeFiles/core_tests.dir/core/heal_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/heal_test.cpp.o.d"
  "/root/repo/tests/core/hierarchy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hierarchy_test.cpp.o.d"
  "/root/repo/tests/core/host_limits_test.cpp" "tests/CMakeFiles/core_tests.dir/core/host_limits_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/host_limits_test.cpp.o.d"
  "/root/repo/tests/core/implementation_registry_test.cpp" "tests/CMakeFiles/core_tests.dir/core/implementation_registry_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/implementation_registry_test.cpp.o.d"
  "/root/repo/tests/core/inheritance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/inheritance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/inheritance_test.cpp.o.d"
  "/root/repo/tests/core/interface_test.cpp" "tests/CMakeFiles/core_tests.dir/core/interface_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/interface_test.cpp.o.d"
  "/root/repo/tests/core/jurisdiction_split_test.cpp" "tests/CMakeFiles/core_tests.dir/core/jurisdiction_split_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/jurisdiction_split_test.cpp.o.d"
  "/root/repo/tests/core/legion_class_test.cpp" "tests/CMakeFiles/core_tests.dir/core/legion_class_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/legion_class_test.cpp.o.d"
  "/root/repo/tests/core/lifecycle_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lifecycle_test.cpp.o.d"
  "/root/repo/tests/core/migration_test.cpp" "tests/CMakeFiles/core_tests.dir/core/migration_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/migration_test.cpp.o.d"
  "/root/repo/tests/core/object_address_test.cpp" "tests/CMakeFiles/core_tests.dir/core/object_address_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/object_address_test.cpp.o.d"
  "/root/repo/tests/core/parser_fuzz_test.cpp" "tests/CMakeFiles/core_tests.dir/core/parser_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/parser_fuzz_test.cpp.o.d"
  "/root/repo/tests/core/replication_test.cpp" "tests/CMakeFiles/core_tests.dir/core/replication_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/replication_test.cpp.o.d"
  "/root/repo/tests/core/resolver_test.cpp" "tests/CMakeFiles/core_tests.dir/core/resolver_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/resolver_test.cpp.o.d"
  "/root/repo/tests/core/scheduling_agent_test.cpp" "tests/CMakeFiles/core_tests.dir/core/scheduling_agent_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/scheduling_agent_test.cpp.o.d"
  "/root/repo/tests/core/security_integration_test.cpp" "tests/CMakeFiles/core_tests.dir/core/security_integration_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/security_integration_test.cpp.o.d"
  "/root/repo/tests/core/system_bootstrap_test.cpp" "tests/CMakeFiles/core_tests.dir/core/system_bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_bootstrap_test.cpp.o.d"
  "/root/repo/tests/core/thread_system_test.cpp" "tests/CMakeFiles/core_tests.dir/core/thread_system_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/thread_system_test.cpp.o.d"
  "/root/repo/tests/core/wire_test.cpp" "tests/CMakeFiles/core_tests.dir/core/wire_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/legion_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/legion_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/legion_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/legion_security.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/legion_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/legion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/legion_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
