file(REMOVE_RECURSE
  "CMakeFiles/naming_tests.dir/naming/context_test.cpp.o"
  "CMakeFiles/naming_tests.dir/naming/context_test.cpp.o.d"
  "CMakeFiles/naming_tests.dir/naming/namespace_robustness_test.cpp.o"
  "CMakeFiles/naming_tests.dir/naming/namespace_robustness_test.cpp.o.d"
  "naming_tests"
  "naming_tests.pdb"
  "naming_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naming_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
