file(REMOVE_RECURSE
  "CMakeFiles/replicated_service.dir/replicated_service.cpp.o"
  "CMakeFiles/replicated_service.dir/replicated_service.cpp.o.d"
  "replicated_service"
  "replicated_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
