# Empty compiler generated dependencies file for replicated_service.
# This may be replaced when dependencies are built.
