# Empty compiler generated dependencies file for shared_files.
# This may be replaced when dependencies are built.
