file(REMOVE_RECURSE
  "CMakeFiles/shared_files.dir/shared_files.cpp.o"
  "CMakeFiles/shared_files.dir/shared_files.cpp.o.d"
  "shared_files"
  "shared_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
