# Empty compiler generated dependencies file for legion_shell.
# This may be replaced when dependencies are built.
