file(REMOVE_RECURSE
  "CMakeFiles/legion_shell.dir/legion_shell.cpp.o"
  "CMakeFiles/legion_shell.dir/legion_shell.cpp.o.d"
  "legion_shell"
  "legion_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
