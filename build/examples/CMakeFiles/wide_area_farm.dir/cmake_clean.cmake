file(REMOVE_RECURSE
  "CMakeFiles/wide_area_farm.dir/wide_area_farm.cpp.o"
  "CMakeFiles/wide_area_farm.dir/wide_area_farm.cpp.o.d"
  "wide_area_farm"
  "wide_area_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_area_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
