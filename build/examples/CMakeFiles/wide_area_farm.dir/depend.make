# Empty dependencies file for wide_area_farm.
# This may be replaced when dependencies are built.
