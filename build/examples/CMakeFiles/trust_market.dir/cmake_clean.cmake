file(REMOVE_RECURSE
  "CMakeFiles/trust_market.dir/trust_market.cpp.o"
  "CMakeFiles/trust_market.dir/trust_market.cpp.o.d"
  "trust_market"
  "trust_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
