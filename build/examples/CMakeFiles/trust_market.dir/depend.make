# Empty dependencies file for trust_market.
# This may be replaced when dependencies are built.
