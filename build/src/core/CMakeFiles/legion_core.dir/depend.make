# Empty dependencies file for legion_core.
# This may be replaced when dependencies are built.
