file(REMOVE_RECURSE
  "CMakeFiles/legion_core.dir/active_object.cpp.o"
  "CMakeFiles/legion_core.dir/active_object.cpp.o.d"
  "CMakeFiles/legion_core.dir/binding_agent.cpp.o"
  "CMakeFiles/legion_core.dir/binding_agent.cpp.o.d"
  "CMakeFiles/legion_core.dir/binding_cache.cpp.o"
  "CMakeFiles/legion_core.dir/binding_cache.cpp.o.d"
  "CMakeFiles/legion_core.dir/class_object.cpp.o"
  "CMakeFiles/legion_core.dir/class_object.cpp.o.d"
  "CMakeFiles/legion_core.dir/comm.cpp.o"
  "CMakeFiles/legion_core.dir/comm.cpp.o.d"
  "CMakeFiles/legion_core.dir/host_object.cpp.o"
  "CMakeFiles/legion_core.dir/host_object.cpp.o.d"
  "CMakeFiles/legion_core.dir/implementation_registry.cpp.o"
  "CMakeFiles/legion_core.dir/implementation_registry.cpp.o.d"
  "CMakeFiles/legion_core.dir/interface.cpp.o"
  "CMakeFiles/legion_core.dir/interface.cpp.o.d"
  "CMakeFiles/legion_core.dir/legion_class.cpp.o"
  "CMakeFiles/legion_core.dir/legion_class.cpp.o.d"
  "CMakeFiles/legion_core.dir/magistrate.cpp.o"
  "CMakeFiles/legion_core.dir/magistrate.cpp.o.d"
  "CMakeFiles/legion_core.dir/object_address.cpp.o"
  "CMakeFiles/legion_core.dir/object_address.cpp.o.d"
  "CMakeFiles/legion_core.dir/scheduling_agent.cpp.o"
  "CMakeFiles/legion_core.dir/scheduling_agent.cpp.o.d"
  "CMakeFiles/legion_core.dir/system.cpp.o"
  "CMakeFiles/legion_core.dir/system.cpp.o.d"
  "liblegion_core.a"
  "liblegion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
