
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_object.cpp" "src/core/CMakeFiles/legion_core.dir/active_object.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/active_object.cpp.o.d"
  "/root/repo/src/core/binding_agent.cpp" "src/core/CMakeFiles/legion_core.dir/binding_agent.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/binding_agent.cpp.o.d"
  "/root/repo/src/core/binding_cache.cpp" "src/core/CMakeFiles/legion_core.dir/binding_cache.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/binding_cache.cpp.o.d"
  "/root/repo/src/core/class_object.cpp" "src/core/CMakeFiles/legion_core.dir/class_object.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/class_object.cpp.o.d"
  "/root/repo/src/core/comm.cpp" "src/core/CMakeFiles/legion_core.dir/comm.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/comm.cpp.o.d"
  "/root/repo/src/core/host_object.cpp" "src/core/CMakeFiles/legion_core.dir/host_object.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/host_object.cpp.o.d"
  "/root/repo/src/core/implementation_registry.cpp" "src/core/CMakeFiles/legion_core.dir/implementation_registry.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/implementation_registry.cpp.o.d"
  "/root/repo/src/core/interface.cpp" "src/core/CMakeFiles/legion_core.dir/interface.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/interface.cpp.o.d"
  "/root/repo/src/core/legion_class.cpp" "src/core/CMakeFiles/legion_core.dir/legion_class.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/legion_class.cpp.o.d"
  "/root/repo/src/core/magistrate.cpp" "src/core/CMakeFiles/legion_core.dir/magistrate.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/magistrate.cpp.o.d"
  "/root/repo/src/core/object_address.cpp" "src/core/CMakeFiles/legion_core.dir/object_address.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/object_address.cpp.o.d"
  "/root/repo/src/core/scheduling_agent.cpp" "src/core/CMakeFiles/legion_core.dir/scheduling_agent.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/scheduling_agent.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/legion_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/legion_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/legion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/legion_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/legion_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/legion_security.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/legion_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
