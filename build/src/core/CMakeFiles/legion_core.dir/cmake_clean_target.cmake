file(REMOVE_RECURSE
  "liblegion_core.a"
)
