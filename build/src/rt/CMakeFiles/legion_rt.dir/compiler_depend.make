# Empty compiler generated dependencies file for legion_rt.
# This may be replaced when dependencies are built.
