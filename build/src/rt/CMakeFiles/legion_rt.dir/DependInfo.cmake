
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/messenger.cpp" "src/rt/CMakeFiles/legion_rt.dir/messenger.cpp.o" "gcc" "src/rt/CMakeFiles/legion_rt.dir/messenger.cpp.o.d"
  "/root/repo/src/rt/sim_runtime.cpp" "src/rt/CMakeFiles/legion_rt.dir/sim_runtime.cpp.o" "gcc" "src/rt/CMakeFiles/legion_rt.dir/sim_runtime.cpp.o.d"
  "/root/repo/src/rt/tcp_runtime.cpp" "src/rt/CMakeFiles/legion_rt.dir/tcp_runtime.cpp.o" "gcc" "src/rt/CMakeFiles/legion_rt.dir/tcp_runtime.cpp.o.d"
  "/root/repo/src/rt/thread_runtime.cpp" "src/rt/CMakeFiles/legion_rt.dir/thread_runtime.cpp.o" "gcc" "src/rt/CMakeFiles/legion_rt.dir/thread_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/legion_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
