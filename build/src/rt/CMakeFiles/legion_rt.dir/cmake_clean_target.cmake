file(REMOVE_RECURSE
  "liblegion_rt.a"
)
