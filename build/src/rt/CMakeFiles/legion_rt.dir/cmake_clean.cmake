file(REMOVE_RECURSE
  "CMakeFiles/legion_rt.dir/messenger.cpp.o"
  "CMakeFiles/legion_rt.dir/messenger.cpp.o.d"
  "CMakeFiles/legion_rt.dir/sim_runtime.cpp.o"
  "CMakeFiles/legion_rt.dir/sim_runtime.cpp.o.d"
  "CMakeFiles/legion_rt.dir/tcp_runtime.cpp.o"
  "CMakeFiles/legion_rt.dir/tcp_runtime.cpp.o.d"
  "CMakeFiles/legion_rt.dir/thread_runtime.cpp.o"
  "CMakeFiles/legion_rt.dir/thread_runtime.cpp.o.d"
  "liblegion_rt.a"
  "liblegion_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
