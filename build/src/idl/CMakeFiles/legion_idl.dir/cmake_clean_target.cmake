file(REMOVE_RECURSE
  "liblegion_idl.a"
)
