file(REMOVE_RECURSE
  "CMakeFiles/legion_idl.dir/compiler.cpp.o"
  "CMakeFiles/legion_idl.dir/compiler.cpp.o.d"
  "CMakeFiles/legion_idl.dir/idl.cpp.o"
  "CMakeFiles/legion_idl.dir/idl.cpp.o.d"
  "liblegion_idl.a"
  "liblegion_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
