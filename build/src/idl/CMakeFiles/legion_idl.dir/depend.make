# Empty dependencies file for legion_idl.
# This may be replaced when dependencies are built.
