
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idl/compiler.cpp" "src/idl/CMakeFiles/legion_idl.dir/compiler.cpp.o" "gcc" "src/idl/CMakeFiles/legion_idl.dir/compiler.cpp.o.d"
  "/root/repo/src/idl/idl.cpp" "src/idl/CMakeFiles/legion_idl.dir/idl.cpp.o" "gcc" "src/idl/CMakeFiles/legion_idl.dir/idl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/legion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/legion_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/legion_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/legion_security.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/legion_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/legion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/legion_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
