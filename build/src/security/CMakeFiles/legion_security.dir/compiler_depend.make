# Empty compiler generated dependencies file for legion_security.
# This may be replaced when dependencies are built.
