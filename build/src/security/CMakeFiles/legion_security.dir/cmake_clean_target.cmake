file(REMOVE_RECURSE
  "liblegion_security.a"
)
