file(REMOVE_RECURSE
  "CMakeFiles/legion_security.dir/policy.cpp.o"
  "CMakeFiles/legion_security.dir/policy.cpp.o.d"
  "liblegion_security.a"
  "liblegion_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
