# Empty compiler generated dependencies file for legion_net.
# This may be replaced when dependencies are built.
