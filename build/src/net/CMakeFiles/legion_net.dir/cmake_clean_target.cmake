file(REMOVE_RECURSE
  "liblegion_net.a"
)
