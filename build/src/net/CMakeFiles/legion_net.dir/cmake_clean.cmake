file(REMOVE_RECURSE
  "CMakeFiles/legion_net.dir/address.cpp.o"
  "CMakeFiles/legion_net.dir/address.cpp.o.d"
  "CMakeFiles/legion_net.dir/fault.cpp.o"
  "CMakeFiles/legion_net.dir/fault.cpp.o.d"
  "CMakeFiles/legion_net.dir/topology.cpp.o"
  "CMakeFiles/legion_net.dir/topology.cpp.o.d"
  "liblegion_net.a"
  "liblegion_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
