# Empty dependencies file for legion_persist.
# This may be replaced when dependencies are built.
