file(REMOVE_RECURSE
  "liblegion_persist.a"
)
