file(REMOVE_RECURSE
  "CMakeFiles/legion_persist.dir/opr.cpp.o"
  "CMakeFiles/legion_persist.dir/opr.cpp.o.d"
  "CMakeFiles/legion_persist.dir/vault.cpp.o"
  "CMakeFiles/legion_persist.dir/vault.cpp.o.d"
  "liblegion_persist.a"
  "liblegion_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
