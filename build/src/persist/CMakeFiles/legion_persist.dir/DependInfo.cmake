
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/opr.cpp" "src/persist/CMakeFiles/legion_persist.dir/opr.cpp.o" "gcc" "src/persist/CMakeFiles/legion_persist.dir/opr.cpp.o.d"
  "/root/repo/src/persist/vault.cpp" "src/persist/CMakeFiles/legion_persist.dir/vault.cpp.o" "gcc" "src/persist/CMakeFiles/legion_persist.dir/vault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/legion_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
