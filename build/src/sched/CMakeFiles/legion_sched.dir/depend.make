# Empty dependencies file for legion_sched.
# This may be replaced when dependencies are built.
