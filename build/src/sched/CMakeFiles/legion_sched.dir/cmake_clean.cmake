file(REMOVE_RECURSE
  "CMakeFiles/legion_sched.dir/placement.cpp.o"
  "CMakeFiles/legion_sched.dir/placement.cpp.o.d"
  "liblegion_sched.a"
  "liblegion_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
