file(REMOVE_RECURSE
  "liblegion_sched.a"
)
