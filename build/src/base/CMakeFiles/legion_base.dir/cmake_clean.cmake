file(REMOVE_RECURSE
  "CMakeFiles/legion_base.dir/buffer.cpp.o"
  "CMakeFiles/legion_base.dir/buffer.cpp.o.d"
  "CMakeFiles/legion_base.dir/log.cpp.o"
  "CMakeFiles/legion_base.dir/log.cpp.o.d"
  "CMakeFiles/legion_base.dir/loid.cpp.o"
  "CMakeFiles/legion_base.dir/loid.cpp.o.d"
  "CMakeFiles/legion_base.dir/serialize.cpp.o"
  "CMakeFiles/legion_base.dir/serialize.cpp.o.d"
  "CMakeFiles/legion_base.dir/status.cpp.o"
  "CMakeFiles/legion_base.dir/status.cpp.o.d"
  "liblegion_base.a"
  "liblegion_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
