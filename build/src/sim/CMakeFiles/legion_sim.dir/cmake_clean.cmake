file(REMOVE_RECURSE
  "CMakeFiles/legion_sim.dir/workload.cpp.o"
  "CMakeFiles/legion_sim.dir/workload.cpp.o.d"
  "liblegion_sim.a"
  "liblegion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
