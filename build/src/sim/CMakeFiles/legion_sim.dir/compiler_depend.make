# Empty compiler generated dependencies file for legion_sim.
# This may be replaced when dependencies are built.
