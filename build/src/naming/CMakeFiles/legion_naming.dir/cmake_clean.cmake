file(REMOVE_RECURSE
  "CMakeFiles/legion_naming.dir/context.cpp.o"
  "CMakeFiles/legion_naming.dir/context.cpp.o.d"
  "liblegion_naming.a"
  "liblegion_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legion_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
