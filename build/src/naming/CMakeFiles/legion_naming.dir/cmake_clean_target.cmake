file(REMOVE_RECURSE
  "liblegion_naming.a"
)
