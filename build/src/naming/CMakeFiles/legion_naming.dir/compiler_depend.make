# Empty compiler generated dependencies file for legion_naming.
# This may be replaced when dependencies are built.
