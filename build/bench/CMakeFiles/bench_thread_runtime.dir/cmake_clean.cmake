file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_runtime.dir/bench_thread_runtime.cpp.o"
  "CMakeFiles/bench_thread_runtime.dir/bench_thread_runtime.cpp.o.d"
  "bench_thread_runtime"
  "bench_thread_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
