# Empty compiler generated dependencies file for bench_thread_runtime.
# This may be replaced when dependencies are built.
