file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_principle.dir/bench_distributed_principle.cpp.o"
  "CMakeFiles/bench_distributed_principle.dir/bench_distributed_principle.cpp.o.d"
  "bench_distributed_principle"
  "bench_distributed_principle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_principle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
