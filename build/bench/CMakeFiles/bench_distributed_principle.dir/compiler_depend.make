# Empty compiler generated dependencies file for bench_distributed_principle.
# This may be replaced when dependencies are built.
