file(REMOVE_RECURSE
  "CMakeFiles/bench_class_cloning.dir/bench_class_cloning.cpp.o"
  "CMakeFiles/bench_class_cloning.dir/bench_class_cloning.cpp.o.d"
  "bench_class_cloning"
  "bench_class_cloning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_class_cloning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
