# Empty compiler generated dependencies file for bench_class_cloning.
# This may be replaced when dependencies are built.
