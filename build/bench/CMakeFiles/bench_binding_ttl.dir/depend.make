# Empty dependencies file for bench_binding_ttl.
# This may be replaced when dependencies are built.
