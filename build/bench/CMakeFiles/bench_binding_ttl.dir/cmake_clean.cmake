file(REMOVE_RECURSE
  "CMakeFiles/bench_binding_ttl.dir/bench_binding_ttl.cpp.o"
  "CMakeFiles/bench_binding_ttl.dir/bench_binding_ttl.cpp.o.d"
  "bench_binding_ttl"
  "bench_binding_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binding_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
