# Empty compiler generated dependencies file for bench_binding_path.
# This may be replaced when dependencies are built.
