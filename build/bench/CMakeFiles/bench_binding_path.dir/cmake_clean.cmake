file(REMOVE_RECURSE
  "CMakeFiles/bench_binding_path.dir/bench_binding_path.cpp.o"
  "CMakeFiles/bench_binding_path.dir/bench_binding_path.cpp.o.d"
  "bench_binding_path"
  "bench_binding_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binding_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
