# Empty dependencies file for bench_lifecycle.
# This may be replaced when dependencies are built.
