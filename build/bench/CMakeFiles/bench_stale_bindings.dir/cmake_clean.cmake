file(REMOVE_RECURSE
  "CMakeFiles/bench_stale_bindings.dir/bench_stale_bindings.cpp.o"
  "CMakeFiles/bench_stale_bindings.dir/bench_stale_bindings.cpp.o.d"
  "bench_stale_bindings"
  "bench_stale_bindings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stale_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
