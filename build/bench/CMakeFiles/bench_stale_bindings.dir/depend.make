# Empty dependencies file for bench_stale_bindings.
# This may be replaced when dependencies are built.
