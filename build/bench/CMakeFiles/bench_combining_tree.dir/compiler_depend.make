# Empty compiler generated dependencies file for bench_combining_tree.
# This may be replaced when dependencies are built.
