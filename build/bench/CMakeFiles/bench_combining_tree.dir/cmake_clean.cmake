file(REMOVE_RECURSE
  "CMakeFiles/bench_combining_tree.dir/bench_combining_tree.cpp.o"
  "CMakeFiles/bench_combining_tree.dir/bench_combining_tree.cpp.o.d"
  "bench_combining_tree"
  "bench_combining_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combining_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
