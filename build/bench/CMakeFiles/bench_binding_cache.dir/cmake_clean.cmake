file(REMOVE_RECURSE
  "CMakeFiles/bench_binding_cache.dir/bench_binding_cache.cpp.o"
  "CMakeFiles/bench_binding_cache.dir/bench_binding_cache.cpp.o.d"
  "bench_binding_cache"
  "bench_binding_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binding_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
