# Empty compiler generated dependencies file for bench_binding_cache.
# This may be replaced when dependencies are built.
