file(REMOVE_RECURSE
  "CMakeFiles/bench_ba_scaling.dir/bench_ba_scaling.cpp.o"
  "CMakeFiles/bench_ba_scaling.dir/bench_ba_scaling.cpp.o.d"
  "bench_ba_scaling"
  "bench_ba_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ba_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
