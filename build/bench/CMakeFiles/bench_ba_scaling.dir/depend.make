# Empty dependencies file for bench_ba_scaling.
# This may be replaced when dependencies are built.
