// Quickstart: boot a Legion system, define a class from IDL, create
// instances, invoke methods, and watch an object survive deactivation.
//
// This walks the lifecycle of Sections 2-4 of the paper end to end:
//   bootstrap -> Derive() -> Create() -> method invocation ->
//   Deactivate() -> reactivation-on-reference.
#include <cstdio>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "idl/idl.hpp"
#include "rt/sim_runtime.hpp"

namespace {

using namespace legion;

// The object we will distribute: a trivial key/value note pad.
class NotePadImpl final : public core::ObjectImpl {
 public:
  static constexpr std::string_view kName = "example.notepad";

  std::string implementation_name() const override {
    return std::string(kName);
  }

  void RegisterMethods(core::MethodTable& table) override {
    table.add("Put", [this](core::ObjectContext&, Reader& args) -> Result<Buffer> {
      const std::string key = args.str();
      const std::string value = args.str();
      if (!args.ok()) return InvalidArgumentError("Put(key, value)");
      notes_[key] = value;
      return Buffer{};
    });
    table.add("Take", [this](core::ObjectContext&, Reader& args) -> Result<Buffer> {
      const std::string key = args.str();
      if (!args.ok()) return InvalidArgumentError("Take(key)");
      auto it = notes_.find(key);
      if (it == notes_.end()) return NotFoundError("no note: " + key);
      return Buffer::FromString(it->second);
    });
  }

  void SaveState(Writer& w) const override {
    w.u32(static_cast<std::uint32_t>(notes_.size()));
    for (const auto& [k, v] : notes_) {
      w.str(k);
      w.str(v);
    }
  }
  Status RestoreState(Reader& r) override {
    if (r.exhausted()) return OkStatus();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      std::string k = r.str();
      notes_[k] = r.str();
    }
    return r.ok() ? OkStatus() : InvalidArgumentError("bad notepad state");
  }

 private:
  std::map<std::string, std::string> notes_;
};

Buffer StrArgs2(std::string_view a, std::string_view b) {
  Buffer buf;
  Writer w(buf);
  w.str(a);
  w.str(b);
  return buf;
}
Buffer StrArgs(std::string_view a) {
  Buffer buf;
  Writer w(buf);
  w.str(a);
  return buf;
}

int Run() {
  // 1. A tiny wide-area topology: one campus jurisdiction, two hosts.
  rt::SimRuntime runtime(2026);
  auto campus = runtime.topology().add_jurisdiction("campus");
  auto h1 = runtime.topology().add_host("ws-1", {campus});
  runtime.topology().add_host("ws-2", {campus});

  // 2. Bootstrap the core objects (Section 4.2.1).
  core::LegionSystem system(runtime, core::SystemConfig{});
  if (auto st = system.registry().add(std::string(NotePadImpl::kName),
                                      [] { return std::make_unique<NotePadImpl>(); });
      !st.ok()) {
    std::fprintf(stderr, "register: %s\n", st.to_string().c_str());
    return 1;
  }
  if (auto st = system.bootstrap(); !st.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("bootstrapped: LegionClass, core classes, %zu binding agent(s), "
              "host objects, magistrates\n",
              system.binding_agents().size());

  auto client = system.make_client(h1);

  // 3. Describe the interface in IDL, as a Legion-aware compiler would.
  auto parsed = idl::ParseSingle(R"(
      interface NotePad {
        void Put(string key, string value);
        string Take(string key);
      };
  )");
  if (!parsed.ok()) {
    std::fprintf(stderr, "idl: %s\n", parsed.status().to_string().c_str());
    return 1;
  }
  std::printf("parsed IDL:\n%s", idl::Render(parsed->interface).c_str());

  // 4. Derive the NotePad class from LegionObject (the kind-of relation).
  core::wire::DeriveRequest derive;
  derive.name = "NotePad";
  derive.instance_impl = std::string(NotePadImpl::kName);
  derive.extra_interface = parsed->interface;
  auto note_class = client->derive(core::LegionObjectLoid(), derive);
  if (!note_class.ok()) {
    std::fprintf(stderr, "derive: %s\n", note_class.status().to_string().c_str());
    return 1;
  }
  std::printf("derived class NotePad = %s\n",
              note_class->loid.to_string().c_str());

  // 5. Create an instance (the is-a relation) and use it.
  auto pad = client->create(note_class->loid);
  if (!pad.ok()) {
    std::fprintf(stderr, "create: %s\n", pad.status().to_string().c_str());
    return 1;
  }
  std::printf("created instance %s\n", pad->loid.to_string().c_str());

  (void)client->ref(pad->loid).call("Put", StrArgs2("paper", "HPDC'96"));
  (void)client->ref(pad->loid).call("Put", StrArgs2("system", "Legion"));
  auto note = client->ref(pad->loid).call("Take", StrArgs("system"));
  std::printf("Take(\"system\") -> \"%s\"\n",
              note.ok() ? note->as_string().c_str()
                        : note.status().to_string().c_str());

  // 6. Deactivate the object: it becomes an Object Persistent
  //    Representation in the jurisdiction's vault (Section 3.1).
  core::wire::LoidRequest deactivate{pad->loid};
  auto mag = system.magistrate_of(campus);
  if (!client->ref(mag)
           .call(core::methods::kDeactivate, deactivate.to_buffer())
           .ok()) {
    std::fprintf(stderr, "deactivate failed\n");
    return 1;
  }
  std::printf("deactivated %s (state now on a vault disk)\n",
              pad->loid.to_string().c_str());

  // 7. Reference it again: the stale binding is detected, refreshed via the
  //    Binding Agent and class, and the magistrate reactivates the object —
  //    with its notes intact (Sections 4.1.2, 4.1.4).
  note = client->ref(pad->loid).call("Take", StrArgs("paper"));
  std::printf("after reactivation, Take(\"paper\") -> \"%s\"\n",
              note.ok() ? note->as_string().c_str()
                        : note.status().to_string().c_str());
  std::printf("stale-binding retries observed by the client: %llu\n",
              static_cast<unsigned long long>(
                  client->resolver().stats().stale_retries));
  return note.ok() && note->as_string() == "HPDC'96" ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
