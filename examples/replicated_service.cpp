// Replication and healing: a lookup service that stays up while its
// replicas die (paper Section 4.3, plus the fault-tolerance objective of
// Section 1).
//
// One LOID fronts four replica processes behind a random-one Object
// Address. A chaos loop kills replicas behind the system's back; the
// magistrate's Heal() restarts them from a survivor's state, and clients
// never see more than a transparent retry.
#include <cstdio>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/sim_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace {

using namespace legion;

int Run() {
  rt::SimRuntime runtime(404);
  auto& topo = runtime.topology();
  const auto jur = topo.add_jurisdiction("service-site");
  std::vector<HostId> hosts;
  for (int h = 0; h < 6; ++h) {
    hosts.push_back(topo.add_host("node-" + std::to_string(h), {jur}, 32.0));
  }

  core::LegionSystem system(runtime, core::SystemConfig{});
  (void)sim::RegisterSampleObjects(system.registry());
  if (auto st = system.bootstrap(); !st.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", st.to_string().c_str());
    return 1;
  }
  auto client = system.make_client(hosts[0]);

  core::wire::DeriveRequest derive;
  derive.name = "LookupService";
  derive.instance_impl = std::string(sim::WorkerImpl::kName);
  auto cls = client->derive(core::LegionObjectLoid(), derive);
  if (!cls.ok()) return 1;

  auto service = client->create_replicated(cls->loid, sim::WorkerInit(0, 0),
                                           /*replicas=*/4,
                                           core::AddressSemantic::kRandomOne);
  if (!service.ok()) {
    std::fprintf(stderr, "create_replicated: %s\n",
                 service.status().to_string().c_str());
    return 1;
  }
  std::printf("service %s: 4 replicas, random-one semantic\n",
              service->loid.to_string().c_str());

  const Loid magistrate = system.magistrate_of(jur);
  Rng chaos(1);
  int served = 0;
  int failed = 0;
  int kills = 0;
  int heals = 0;

  for (int round = 0; round < 8; ++round) {
    // Serve a burst of lookups.
    for (int i = 0; i < 25; ++i) {
      if (client->ref(service->loid).call("Increment", Buffer{}).ok()) {
        ++served;
      } else {
        ++failed;
      }
    }

    // Chaos: murder one replica process directly on its host.
    std::vector<HostId> running;
    for (HostId h : hosts) {
      if (system.host_impl(h)->find_object(service->loid) != nullptr) {
        running.push_back(h);
      }
    }
    if (running.size() > 1) {
      const HostId victim = running[chaos.below(running.size())];
      core::wire::StopObjectRequest stop{service->loid, true};
      if (client->ref(system.host_object_of(victim))
              .call(core::methods::kStopObject, stop.to_buffer())
              .ok()) {
        ++kills;
      }
    }

    // Operations notices and heals (every other round, to let stale
    // addresses linger and show the retry machinery absorbing them).
    if (round % 2 == 1) {
      core::wire::LoidRequest heal{service->loid};
      auto healed = client->ref(magistrate)
                        .call(core::methods::kHeal, heal.to_buffer());
      if (healed.ok()) {
        ++heals;
        auto reply = core::wire::BindingReply::from_buffer(*healed);
        if (reply.ok()) client->resolver().add_binding(reply->binding);
      }
    }
  }

  // Total work done across all replicas (each replica counts what it saw).
  std::int64_t total = 0;
  std::vector<HostId> running;
  for (HostId h : hosts) {
    auto* shell = system.host_impl(h)->find_object(service->loid);
    if (shell == nullptr) continue;
    running.push_back(h);
    auto raw = client->resolver().call_binding(
        core::Binding{service->loid, shell->address(), kSimTimeNever}, "Get",
        Buffer{}, rt::EnvTriple::System(), 10'000'000);
    if (raw.ok()) {
      Reader r(*raw);
      total += r.i64();
    }
  }

  std::printf("served %d lookups (%d transparent failures) through %d "
              "replica kills and %d heals\n",
              served, failed, kills, heals);
  std::printf("replicas alive at the end: %zu, work absorbed: %lld\n",
              running.size(), static_cast<long long>(total));
  std::printf("client stale retries: %llu\n",
              static_cast<unsigned long long>(
                  client->resolver().stats().stale_retries));

  const bool ok = served >= 150 && running.size() >= 2;
  std::printf("%s\n", ok ? "replicated service: OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
