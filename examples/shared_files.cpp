// The single persistent name space in action (paper Section 1: "This makes
// remote files and data more easily accessible, thereby facilitating the
// construction of applications that span multiple sites").
//
// File-like Legion objects are bound into a hierarchical context tree. A
// writer at one site publishes results under a path; readers at other sites
// resolve the same path. Files survive deactivation — the name space is
// persistent, not a cache.
#include <cstdio>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "naming/context.hpp"
#include "rt/sim_runtime.hpp"

namespace {

using namespace legion;

// An append-only text file object.
class TextFileImpl final : public core::ObjectImpl {
 public:
  static constexpr std::string_view kName = "example.textfile";

  std::string implementation_name() const override {
    return std::string(kName);
  }

  void RegisterMethods(core::MethodTable& table) override {
    table.add("Append", [this](core::ObjectContext&, Reader& args) -> Result<Buffer> {
      const std::string line = args.str();
      if (!args.ok()) return InvalidArgumentError("Append(line)");
      content_ += line;
      content_ += '\n';
      return Buffer{};
    });
    table.add("Read", [this](core::ObjectContext&, Reader&) -> Result<Buffer> {
      return Buffer::FromString(content_);
    });
    table.add("Size", [this](core::ObjectContext&, Reader&) -> Result<Buffer> {
      Buffer out;
      Writer w(out);
      w.u64(content_.size());
      return out;
    });
  }

  void SaveState(Writer& w) const override { w.str(content_); }
  Status RestoreState(Reader& r) override {
    if (!r.exhausted()) content_ = r.str();
    return OkStatus();
  }

 private:
  std::string content_;
};

Buffer Line(std::string_view s) {
  Buffer buf;
  Writer w(buf);
  w.str(s);
  return buf;
}

int Run() {
  rt::SimRuntime runtime(41);
  auto& topo = runtime.topology();
  const auto uva = topo.add_jurisdiction("uva");
  const auto lanl = topo.add_jurisdiction("lanl");
  const auto uva_host = topo.add_host("uva-fs", {uva});
  const auto lanl_host = topo.add_host("lanl-ws", {lanl});

  core::LegionSystem system(runtime, core::SystemConfig{});
  (void)system.registry().add(std::string(TextFileImpl::kName), [] {
    return std::make_unique<TextFileImpl>();
  });
  (void)naming::RegisterNamingImpls(system.registry());
  if (auto st = system.bootstrap(); !st.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", st.to_string().c_str());
    return 1;
  }

  // The writer lives at UVa.
  auto writer = system.make_client(uva_host, "writer");

  core::wire::DeriveRequest derive;
  derive.name = "TextFile";
  derive.instance_impl = std::string(TextFileImpl::kName);
  auto file_class = writer->derive(core::LegionObjectLoid(), derive);
  if (!file_class.ok()) return 1;

  // Build the shared name space root and publish two files.
  auto root = naming::CreateContext(*writer);
  if (!root.ok()) return 1;
  std::printf("root context: %s\n", root->to_string().c_str());

  auto results = writer->create(file_class->loid, Buffer{}, {system.magistrate_of(uva)});
  auto readme = writer->create(file_class->loid, Buffer{}, {system.magistrate_of(uva)});
  if (!results.ok() || !readme.ok()) return 1;

  (void)naming::BindPath(*writer, *root, "projects/legion/results.txt",
                         results->loid);
  (void)naming::BindPath(*writer, *root, "projects/legion/README",
                         readme->loid);
  (void)writer->ref(readme->loid).call("Append", Line("Legion shared files"));
  (void)writer->ref(results->loid)
      .call("Append", Line("run 1: converged in 42 iterations"));
  (void)writer->ref(results->loid)
      .call("Append", Line("run 2: converged in 17 iterations"));
  std::printf("writer published projects/legion/{results.txt,README}\n");

  // The file goes inert — e.g. the workstation reclaims memory overnight.
  core::wire::LoidRequest deactivate{results->loid};
  (void)writer->ref(system.magistrate_of(uva))
      .call(core::methods::kDeactivate, deactivate.to_buffer());
  std::printf("results.txt deactivated to persistent storage\n");

  // A reader at LANL — another organization entirely — resolves the same
  // path and reads; the reference transparently reactivates the file.
  auto reader = system.make_client(lanl_host, "reader");
  auto found = naming::ResolvePath(*reader, *root,
                                   "projects/legion/results.txt");
  if (!found.ok()) {
    std::fprintf(stderr, "resolve: %s\n", found.status().to_string().c_str());
    return 1;
  }
  auto content = reader->ref(*found).call("Read", Buffer{});
  if (!content.ok()) {
    std::fprintf(stderr, "read: %s\n", content.status().to_string().c_str());
    return 1;
  }
  std::printf("reader at lanl sees:\n%s", content->as_string().c_str());

  // Directory listing across sites.
  auto dir = naming::ResolvePath(*reader, *root, "projects/legion");
  if (dir.ok()) {
    auto entries = naming::List(*reader, *dir);
    if (entries.ok()) {
      std::printf("ls projects/legion:\n");
      for (const auto& e : *entries) {
        std::printf("  %-14s -> %s\n", e.name.c_str(),
                    e.loid.to_string().c_str());
      }
    }
  }
  const bool ok =
      content->as_string().find("run 2") != std::string::npos;
  std::printf("%s\n", ok ? "shared persistent name space: OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
