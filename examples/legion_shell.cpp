// legion_shell: an interactive tour of the Legion system.
//
// A tiny REPL over the public API: compile IDL into classes, create
// objects, bind them into the persistent name space, invoke methods,
// deactivate/migrate them, and watch the binding machinery repair itself.
// Run with no arguments on a terminal for interactive use; with --demo (or
// when stdin is not a terminal) it executes a canned script of the same
// commands.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/monitor_object.hpp"
#include "core/scheduling_agent.hpp"
#include "core/system.hpp"
#include "core/well_known.hpp"
#include "idl/compiler.hpp"
#include "naming/context.hpp"
#include "obs/trace_export.hpp"
#include "rt/sim_runtime.hpp"
#include "sim/sample_objects.hpp"

#include <unistd.h>

namespace {

using namespace legion;

class Shell {
 public:
  Shell() {
    auto& topo = runtime_.topology();
    jurisdictions_.push_back(topo.add_jurisdiction("uva"));
    jurisdictions_.push_back(topo.add_jurisdiction("ncsa"));
    for (std::size_t j = 0; j < jurisdictions_.size(); ++j) {
      for (int h = 0; h < 2; ++h) {
        hosts_.push_back(topo.add_host(
            topo.jurisdiction(jurisdictions_[j])->name + "-" +
                std::to_string(h + 1),
            {jurisdictions_[j]}, 16.0));
      }
    }
    core::SystemConfig config;
    // Let every Host Object feed the fleet plane as it serves (the `fleet`
    // command also forces a fresh snapshot from each host).
    config.metrics_publish_interval_us = 1'000'000;
    system_ = std::make_unique<core::LegionSystem>(runtime_, config);
    (void)sim::RegisterSampleObjects(system_->registry());
    (void)naming::RegisterNamingImpls(system_->registry());
    (void)core::RegisterSchedulingImpls(system_->registry());
    if (auto st = system_->bootstrap(); !st.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n", st.to_string().c_str());
      std::exit(1);
    }
    client_ = system_->make_client(hosts_.front(), "shell");
    auto root = naming::CreateContext(*client_);
    if (!root.ok()) std::exit(1);
    root_ = *root;
  }

  // Returns false on quit/EOF.
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") return Help();
    if (cmd == "topology") return Topology();
    if (cmd == "compile") return Compile(line.substr(line.find(' ') + 1));
    if (cmd == "create") return Create(in);
    if (cmd == "ls") return List(in);
    if (cmd == "call") return Call(in);
    if (cmd == "deactivate") return Deactivate(in);
    if (cmd == "move") return Move(in);
    if (cmd == "delete") return Delete(in);
    if (cmd == "stats") return Stats();
    if (cmd == "trace") return Trace(in);
    if (cmd == "metrics") return Metrics(in);
    if (cmd == "fleet") return Fleet();
    std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    return true;
  }

 private:
  bool Help() {
    std::printf(
        "commands:\n"
        "  topology                      show jurisdictions and hosts\n"
        "  compile <idl text>            compile an interface, e.g.\n"
        "                                compile interface Worker { int Get(); };\n"
        "  create <Class> <name>         create an instance, bind as <name>\n"
        "  ls                            list the name space\n"
        "  call <name> <method>          invoke a no-arg method\n"
        "  deactivate <name>             put the object into a vault\n"
        "  move <name> <jurisdiction#>   migrate between jurisdictions\n"
        "  delete <name>                 remove the object\n"
        "  stats                         comm stats, metrics registry, and "
        "recent trace hops\n"
        "  trace dump <file>             export spans as Chrome trace JSON\n"
        "  metrics dump [file]           Prometheus text dump of the registry\n"
        "  fleet                         per-host rollups from the monitor\n"
        "  quit\n");
    return true;
  }

  bool Topology() {
    const auto& topo = runtime_.topology();
    for (std::size_t j = 0; j < jurisdictions_.size(); ++j) {
      std::printf("jurisdiction %zu: %s (magistrate %s)\n", j,
                  topo.jurisdiction(jurisdictions_[j])->name.c_str(),
                  system_->magistrate_of(jurisdictions_[j]).to_string().c_str());
      for (HostId h : topo.hosts_in(jurisdictions_[j])) {
        std::printf("  host %-8s host-object %s\n", topo.host(h)->name.c_str(),
                    system_->host_object_of(h).to_string().c_str());
      }
    }
    return true;
  }

  bool Compile(const std::string& source) {
    idl::CompileOptions options;
    options.instance_impl = std::string(sim::WorkerImpl::kName);
    options.naming_context = root_;
    auto replies = idl::CompileText(*client_, source, options);
    if (!replies.ok()) {
      std::printf("compile error: %s\n", replies.status().to_string().c_str());
      return true;
    }
    for (const auto& reply : *replies) {
      std::printf("class %s = %s\n",
                  reply.loid.names_class_object() ? "object" : "?",
                  reply.loid.to_string().c_str());
    }
    return true;
  }

  bool Create(std::istringstream& in) {
    std::string class_name, object_name;
    in >> class_name >> object_name;
    auto cls = naming::Lookup(*client_, root_, class_name);
    if (!cls.ok()) {
      std::printf("no such class '%s' (compile it first)\n",
                  class_name.c_str());
      return true;
    }
    auto reply = client_->create(*cls);
    if (!reply.ok()) {
      std::printf("create failed: %s\n", reply.status().to_string().c_str());
      return true;
    }
    if (object_name.empty()) object_name = class_name + "-obj";
    (void)naming::Bind(*client_, root_, object_name, reply->loid);
    std::printf("created %s = %s\n", object_name.c_str(),
                reply->loid.to_string().c_str());
    return true;
  }

  bool List(std::istringstream&) {
    auto entries = naming::List(*client_, root_);
    if (!entries.ok()) return true;
    for (const auto& entry : *entries) {
      std::printf("  %-16s %s\n", entry.name.c_str(),
                  entry.loid.to_string().c_str());
    }
    return true;
  }

  Result<Loid> Resolve(const std::string& name) {
    return naming::ResolvePath(*client_, root_, name);
  }

  bool Call(std::istringstream& in) {
    std::string name, method;
    in >> name >> method;
    auto loid = Resolve(name);
    if (!loid.ok()) {
      std::printf("no such object '%s'\n", name.c_str());
      return true;
    }
    auto raw = client_->ref(*loid).call(method, Buffer{});
    if (!raw.ok()) {
      std::printf("error: %s\n", raw.status().to_string().c_str());
      return true;
    }
    if (raw->size() == 8) {
      Reader r(*raw);
      std::printf("-> %lld\n", static_cast<long long>(r.i64()));
    } else if (!raw->empty()) {
      std::printf("-> \"%s\"\n", raw->as_string().c_str());
    } else {
      std::printf("-> ok\n");
    }
    return true;
  }

  core::MagistrateImpl* OwnerOf(const Loid& loid, Loid* magistrate_loid) {
    for (JurisdictionId j : jurisdictions_) {
      core::MagistrateImpl* impl = system_->magistrate_impl(j);
      if (impl != nullptr && impl->manages(loid)) {
        *magistrate_loid = system_->magistrate_of(j);
        return impl;
      }
    }
    return nullptr;
  }

  bool Deactivate(std::istringstream& in) {
    std::string name;
    in >> name;
    auto loid = Resolve(name);
    if (!loid.ok()) return true;
    Loid magistrate;
    if (OwnerOf(*loid, &magistrate) == nullptr) {
      std::printf("no magistrate manages %s\n", name.c_str());
      return true;
    }
    core::wire::LoidRequest req{*loid};
    auto st = client_->ref(magistrate)
                  .call(core::methods::kDeactivate, req.to_buffer())
                  .status();
    std::printf("%s\n", st.ok() ? "now inert (reference it to reactivate)"
                                : st.to_string().c_str());
    return true;
  }

  bool Move(std::istringstream& in) {
    std::string name;
    std::size_t dest = 0;
    in >> name >> dest;
    auto loid = Resolve(name);
    if (!loid.ok() || dest >= jurisdictions_.size()) {
      std::printf("usage: move <name> <jurisdiction 0..%zu>\n",
                  jurisdictions_.size() - 1);
      return true;
    }
    Loid src;
    if (OwnerOf(*loid, &src) == nullptr) {
      std::printf("no magistrate manages %s\n", name.c_str());
      return true;
    }
    const Loid dest_magistrate =
        system_->magistrate_of(jurisdictions_[dest]);
    if (dest_magistrate == src) {
      std::printf("already managed by jurisdiction %zu\n", dest);
      return true;
    }
    core::wire::TransferRequest req{*loid, dest_magistrate};
    auto st =
        client_->ref(src).call(core::methods::kMove, req.to_buffer()).status();
    std::printf("%s\n", st.ok() ? "moved" : st.to_string().c_str());
    return true;
  }

  bool Delete(std::istringstream& in) {
    std::string name;
    in >> name;
    auto loid = Resolve(name);
    if (!loid.ok()) return true;
    auto st = client_->delete_object(loid->responsible_class(), *loid);
    if (st.ok()) (void)naming::Unbind(*client_, root_, name);
    std::printf("%s\n", st.ok() ? "deleted" : st.to_string().c_str());
    return true;
  }

  bool Stats() {
    const auto rs = client_->resolver().stats();
    const auto cs = client_->resolver().cache().stats();
    std::printf("binding-agent consults %llu · stale retries %llu · "
                "refreshes %llu · cache hit-rate %.2f\n",
                static_cast<unsigned long long>(rs.binding_agent_consults),
                static_cast<unsigned long long>(rs.stale_retries),
                static_cast<unsigned long long>(rs.refreshes), cs.hit_rate());

    std::printf("-- metrics --\n");
    for (const auto& row : runtime_.metrics().rows()) {
      switch (row.kind) {
        case obs::MetricKind::kCounter:
          if (row.count == 0) break;
          std::printf("  %-28s %llu\n", row.name.c_str(),
                      static_cast<unsigned long long>(row.count));
          break;
        case obs::MetricKind::kGauge:
          std::printf("  %-28s %lld\n", row.name.c_str(),
                      static_cast<long long>(row.gauge));
          break;
        case obs::MetricKind::kHistogram:
          if (row.count == 0) break;
          std::printf("  %-28s n=%llu mean=%.1fus p50<=%llu p99<=%llu "
                      "max=%llu\n",
                      row.name.c_str(),
                      static_cast<unsigned long long>(row.count), row.mean,
                      static_cast<unsigned long long>(row.p50),
                      static_cast<unsigned long long>(row.p99),
                      static_cast<unsigned long long>(row.max));
          break;
      }
    }

    constexpr std::size_t kTraceDump = 12;
    const auto hops = runtime_.traces().last(kTraceDump);
    std::printf("-- last %zu trace hops (of %llu recorded) --\n", hops.size(),
                static_cast<unsigned long long>(runtime_.traces().recorded()));
    for (const auto& hop : hops) {
      const std::string_view method = hop.method_view();
      std::printf("  trace %llu hop %u t=%lld %llu->%llu %s%s%.*s\n",
                  static_cast<unsigned long long>(hop.trace_id), hop.hop,
                  static_cast<long long>(hop.at),
                  static_cast<unsigned long long>(hop.src),
                  static_cast<unsigned long long>(hop.dst),
                  std::string(obs::to_string(hop.kind)).c_str(),
                  method.empty() ? "" : " ",
                  static_cast<int>(method.size()), method.data());
    }
    return true;
  }

  bool Trace(std::istringstream& in) {
    std::string sub, path;
    in >> sub >> path;
    if (sub != "dump" || path.empty()) {
      std::printf("usage: trace dump <file>\n");
      return true;
    }
    const auto hops = runtime_.traces().last(runtime_.traces().capacity());
    if (!obs::WriteChromeTraceFile(hops, path)) {
      std::printf("cannot write %s\n", path.c_str());
      return true;
    }
    std::printf("wrote %zu hops to %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                hops.size(), path.c_str());
    return true;
  }

  bool Metrics(std::istringstream& in) {
    std::string sub, path;
    in >> sub >> path;
    if (sub != "dump") {
      std::printf("usage: metrics dump [file]\n");
      return true;
    }
    if (path.empty()) {
      obs::WritePrometheus(runtime_.metrics(), std::cout);
      return true;
    }
    std::ofstream out(path);
    if (!out) {
      std::printf("cannot write %s\n", path.c_str());
      return true;
    }
    obs::WritePrometheus(runtime_.metrics(), out);
    std::printf("wrote metrics to %s\n", path.c_str());
    return true;
  }

  bool Fleet() {
    // Force a fresh snapshot from every host, then read the monitor's
    // rollups directly (same process; the wire path is what fed them).
    for (HostId h : hosts_) {
      auto st = client_->ref(system_->host_object_of(h))
                    .call(core::methods::kPublishMetrics, Buffer{})
                    .status();
      if (!st.ok()) {
        std::printf("publish on host %u failed: %s\n", h.value,
                    st.to_string().c_str());
      }
    }
    runtime_.run_until_idle();  // let the fire-and-forget reports land
    auto raw = client_->ref(system_->monitor_loid())
                   .call(core::methods::kGetFleet, Buffer{});
    if (!raw.ok()) {
      std::printf("GetFleet failed: %s\n", raw.status().to_string().c_str());
      return true;
    }
    auto reply = core::FleetReply::from_buffer(*raw);
    if (!reply.ok()) {
      std::printf("bad FleetReply: %s\n", reply.status().to_string().c_str());
      return true;
    }
    std::printf("-- fleet (%zu hosts) --\n", reply->hosts.size());
    std::printf("  %-6s %8s %10s %8s %8s %10s %6s %s\n", "host", "calls",
                "calls/s", "p50us", "p99us", "queue-p99", "depth", "flags");
    for (const auto& row : reply->hosts) {
      std::string flags;
      if (row.slow) flags += "slow ";
      if (row.suspect) flags += "suspect";
      std::printf("  %-6u %8llu %10.1f %8llu %8llu %10llu %6lld %s\n",
                  row.host, static_cast<unsigned long long>(row.calls),
                  row.calls_per_sec,
                  static_cast<unsigned long long>(row.p50_us),
                  static_cast<unsigned long long>(row.p99_us),
                  static_cast<unsigned long long>(row.queue_p99_us),
                  static_cast<long long>(row.queue_depth), flags.c_str());
    }
    std::printf("-- methods (fleet-wide) --\n");
    for (const auto& row : reply->methods) {
      std::printf("  %-20s n=%llu p50<=%lluus p99<=%lluus max=%lluus\n",
                  row.method.c_str(),
                  static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.p50_us),
                  static_cast<unsigned long long>(row.p99_us),
                  static_cast<unsigned long long>(row.max_us));
    }
    return true;
  }

  rt::SimRuntime runtime_{2026};
  std::unique_ptr<core::LegionSystem> system_;
  std::unique_ptr<core::Client> client_;
  std::vector<JurisdictionId> jurisdictions_;
  std::vector<HostId> hosts_;
  Loid root_;
};

int RunDemo(Shell& shell) {
  const char* script[] = {
      "topology",
      "compile interface Worker { int Increment(); int Get(); };",
      "create Worker alpha",
      "create Worker beta",
      "ls",
      "call alpha Increment",
      "call alpha Increment",
      "call alpha Get",
      "deactivate alpha",
      "call alpha Get",
      "move alpha 1",
      "call alpha Get",
      "delete beta",
      "ls",
      "stats",
      "fleet",
      "trace dump legion_trace.json",
  };
  for (const char* line : script) {
    std::printf("legion> %s\n", line);
    if (!shell.Execute(line)) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  const bool demo =
      (argc > 1 && std::string(argv[1]) == "--demo") || isatty(0) == 0;
  if (demo) return RunDemo(shell);

  std::printf("Legion shell — 'help' for commands, 'quit' to exit.\n");
  std::string line;
  while (true) {
    std::printf("legion> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Execute(line)) break;
  }
  return 0;
}
