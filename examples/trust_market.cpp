// Site autonomy and the market in service provision (paper Sections 2.1.3
// and 2.2): per-organization Magistrates with their own security policies.
//
// Three organizations offer jurisdictions:
//   * DOE    — its magistrate only serves callers of DOE-certified classes;
//   * NASA   — serves anyone on its explicit partner ACL;
//   * campus — a grad student's magistrate that serves everyone.
// A DOE job placement succeeds only on magistrates it trusts; national labs
// "may choose to trust the DOE, and use the DOE implementations".
#include <cstdio>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/sim_runtime.hpp"
#include "security/policy.hpp"

namespace {

using namespace legion;

class JobImpl final : public core::ObjectImpl {
 public:
  static constexpr std::string_view kName = "example.job";

  std::string implementation_name() const override {
    return std::string(kName);
  }
  void RegisterMethods(core::MethodTable& table) override {
    table.add("Run", [](core::ObjectContext& ctx, Reader&) -> Result<Buffer> {
      return Buffer::FromString("ran on " + ctx.shell.self().to_string());
    });
  }
};

// The class id DOE certifies for its own agents' identities.
constexpr std::uint64_t kDoeAgentClass = 9001;
// NASA's explicit partner list uses caller identities.
const Loid kNasaPartner{9002, 1};

struct Placement {
  const char* site;
  Loid magistrate;
};

int Run() {
  rt::SimRuntime runtime(5150);
  auto& topo = runtime.topology();
  const auto doe_j = topo.add_jurisdiction("doe");
  const auto nasa_j = topo.add_jurisdiction("nasa");
  const auto campus_j = topo.add_jurisdiction("campus");
  topo.add_host("doe-1", {doe_j});
  topo.add_host("nasa-1", {nasa_j});
  const auto campus_host = topo.add_host("campus-1", {campus_j});

  core::LegionSystem system(runtime, core::SystemConfig{});
  (void)system.registry().add(std::string(JobImpl::kName),
                              [] { return std::make_unique<JobImpl>(); });
  if (auto st = system.bootstrap(); !st.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", st.to_string().c_str());
    return 1;
  }

  // Each organization replaces its magistrate's policy with its own —
  // "resource owners can provide their own, trusted by them,
  //  implementations of Legion functions and objects" (Section 2.1.4).
  // Policies gate the management verbs; registration and reads stay open.
  auto guard = [](security::PolicyPtr inner) {
    return std::make_shared<security::MethodGuard>(
        std::set<std::string>{std::string(core::methods::kStoreNew),
                              std::string(core::methods::kActivate),
                              std::string(core::methods::kMove),
                              std::string(core::methods::kCopy),
                              std::string(core::methods::kReceiveOpr)},
        std::move(inner), security::MakeAllowAll());
  };
  // Authorization is by *Responsible Agent*: placement requests arrive via
  // class objects acting on the user's behalf (Section 2.4's RA role).
  system.magistrate_impl(doe_j)->set_policy(
      guard(std::make_shared<security::TrustedClassPolicy>(
          std::vector<std::uint64_t>{kDoeAgentClass}, /*allow_system=*/false,
          security::AgentSelector::kResponsibleAgent)));
  system.magistrate_impl(nasa_j)->set_policy(
      guard(std::make_shared<security::CallerAcl>(
          std::vector<Loid>{kNasaPartner}, /*allow_system=*/false,
          security::AgentSelector::kResponsibleAgent)));
  // campus keeps the default allow-all.

  auto job_owner = system.make_client(campus_host, "doe-agent");
  job_owner->set_identity(Loid{kDoeAgentClass, 7});  // a DOE-certified agent

  core::wire::DeriveRequest derive;
  derive.name = "Job";
  derive.instance_impl = std::string(JobImpl::kName);
  auto job_class = job_owner->derive(core::LegionObjectLoid(), derive);
  if (!job_class.ok()) {
    std::fprintf(stderr, "derive: %s\n", job_class.status().to_string().c_str());
    return 1;
  }

  const Placement placements[] = {
      {"doe", system.magistrate_of(doe_j)},
      {"nasa", system.magistrate_of(nasa_j)},
      {"campus", system.magistrate_of(campus_j)},
  };

  std::printf("DOE agent (class %llu) shopping for placement:\n",
              static_cast<unsigned long long>(kDoeAgentClass));
  int successes = 0;
  for (const Placement& p : placements) {
    auto reply = job_owner->create(job_class->loid, Buffer{}, {p.magistrate});
    if (reply.ok()) {
      auto ran = job_owner->ref(reply->loid).call("Run", Buffer{});
      std::printf("  %-7s ACCEPTED  (%s)\n", p.site,
                  ran.ok() ? ran->as_string().c_str() : "run failed");
      ++successes;
    } else {
      std::printf("  %-7s refused: %s\n", p.site,
                  reply.status().to_string().c_str());
    }
  }

  // A NASA partner gets the opposite treatment at NASA.
  auto partner = system.make_client(campus_host, "nasa-partner");
  partner->set_identity(kNasaPartner);
  auto partner_job =
      partner->create(job_class->loid, Buffer{},
                      {system.magistrate_of(nasa_j)});
  std::printf("NASA partner at nasa: %s\n",
              partner_job.ok() ? "ACCEPTED" : partner_job.status().to_string().c_str());

  // An anonymous student is served only by the campus magistrate.
  auto anon = system.make_client(campus_host, "anon");
  int anon_accepted = 0;
  for (const Placement& p : placements) {
    if (anon->create(job_class->loid, Buffer{}, {p.magistrate}).ok()) {
      ++anon_accepted;
      std::printf("anonymous client accepted at %s only\n", p.site);
    }
  }

  const bool ok = successes == 2 /* doe + campus */ && partner_job.ok() &&
                  anon_accepted == 1;
  std::printf("%s\n", ok ? "site autonomy market: OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
