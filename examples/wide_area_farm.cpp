// Wide-area compute farm: the workstation-farm scenario that motivates the
// paper's introduction ("wide-area assemblies of workstations,
// supercomputers, and parallel supercomputers").
//
// Three jurisdictions contribute hosts; worker objects estimate pi by
// counting lattice points inside a quarter circle. The driver creates
// workers across jurisdictions (least-loaded placement), farms out chunks,
// migrates a worker mid-computation to show location transparency, and
// aggregates results.
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/sim_runtime.hpp"

namespace {

using namespace legion;

// Counts lattice points (x, y) with x^2 + y^2 <= n^2 over a strip of rows.
class PiWorkerImpl final : public core::ObjectImpl {
 public:
  static constexpr std::string_view kName = "example.pi-worker";

  std::string implementation_name() const override {
    return std::string(kName);
  }

  void RegisterMethods(core::MethodTable& table) override {
    table.add("CountStrip",
              [this](core::ObjectContext&, Reader& args) -> Result<Buffer> {
                const std::int64_t n = args.i64();
                const std::int64_t row_begin = args.i64();
                const std::int64_t row_end = args.i64();
                if (!args.ok() || n <= 0 || row_begin < 0 || row_end > n) {
                  return InvalidArgumentError("CountStrip(n, begin, end)");
                }
                std::int64_t inside = 0;
                for (std::int64_t y = row_begin; y < row_end; ++y) {
                  for (std::int64_t x = 0; x < n; ++x) {
                    if (x * x + y * y <= n * n) ++inside;
                  }
                }
                chunks_done_ += 1;
                Buffer out;
                Writer w(out);
                w.i64(inside);
                return out;
              });
    table.add("ChunksDone",
              [this](core::ObjectContext&, Reader&) -> Result<Buffer> {
                Buffer out;
                Writer w(out);
                w.i64(chunks_done_);
                return out;
              });
  }

  void SaveState(Writer& w) const override { w.i64(chunks_done_); }
  Status RestoreState(Reader& r) override {
    if (!r.exhausted()) chunks_done_ = r.i64();
    return OkStatus();
  }

 private:
  std::int64_t chunks_done_ = 0;  // survives migration
};

Buffer StripArgs(std::int64_t n, std::int64_t begin, std::int64_t end) {
  Buffer buf;
  Writer w(buf);
  w.i64(n);
  w.i64(begin);
  w.i64(end);
  return buf;
}

int Run() {
  rt::SimRuntime runtime(777);
  auto& topo = runtime.topology();
  const auto uva = topo.add_jurisdiction("uva");
  const auto ncsa = topo.add_jurisdiction("ncsa");
  const auto sdsc = topo.add_jurisdiction("sdsc");
  std::vector<HostId> hosts;
  for (int i = 0; i < 3; ++i) hosts.push_back(topo.add_host("uva-" + std::to_string(i), {uva}, 4.0));
  for (int i = 0; i < 3; ++i) hosts.push_back(topo.add_host("ncsa-" + std::to_string(i), {ncsa}, 8.0));
  for (int i = 0; i < 2; ++i) hosts.push_back(topo.add_host("sdsc-" + std::to_string(i), {sdsc}, 8.0));

  core::SystemConfig config;
  config.placement_policy = "least-loaded";
  core::LegionSystem system(runtime, config);
  (void)system.registry().add(std::string(PiWorkerImpl::kName), [] {
    return std::make_unique<PiWorkerImpl>();
  });
  if (auto st = system.bootstrap(); !st.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", st.to_string().c_str());
    return 1;
  }
  auto client = system.make_client(hosts.front());

  // One worker class, instances spread over all three jurisdictions.
  core::wire::DeriveRequest derive;
  derive.name = "PiWorker";
  derive.instance_impl = std::string(PiWorkerImpl::kName);
  auto worker_class = client->derive(core::LegionObjectLoid(), derive);
  if (!worker_class.ok()) return 1;

  constexpr int kWorkers = 6;
  std::vector<Loid> workers;
  const std::vector<Loid> magistrates = system.magistrates();
  for (int i = 0; i < kWorkers; ++i) {
    auto reply = client->create(worker_class->loid, Buffer{},
                                {magistrates[i % magistrates.size()]});
    if (!reply.ok()) {
      std::fprintf(stderr, "create worker: %s\n",
                   reply.status().to_string().c_str());
      return 1;
    }
    workers.push_back(reply->loid);
  }
  std::printf("farm: %d workers across %zu jurisdictions\n", kWorkers,
              magistrates.size());

  // Farm out strips of the n x n lattice, non-blocking and round-robin.
  constexpr std::int64_t kN = 600;
  constexpr std::int64_t kChunk = 50;
  std::int64_t inside = 0;
  int chunks = 0;
  for (std::int64_t row = 0; row < kN; row += kChunk) {
    const Loid& worker = workers[static_cast<std::size_t>(chunks) % workers.size()];

    // Mid-run, migrate worker 0 to another jurisdiction: callers never
    // notice beyond a transparent binding refresh.
    if (chunks == 4) {
      core::wire::TransferRequest move{workers[0], magistrates[1]};
      if (client->ref(magistrates[0])
              .call(core::methods::kMove, move.to_buffer())
              .ok()) {
        std::printf("migrated worker %s from %s to %s mid-computation\n",
                    workers[0].to_string().c_str(), "jurisdiction-1",
                    "jurisdiction-2");
      }
    }

    auto result = client->ref(worker).call(
        "CountStrip", StripArgs(kN, row, std::min(row + kChunk, kN)));
    if (!result.ok()) {
      std::fprintf(stderr, "chunk %d failed: %s\n", chunks,
                   result.status().to_string().c_str());
      return 1;
    }
    Reader r(*result);
    inside += r.i64();
    ++chunks;
  }

  const double pi = 4.0 * static_cast<double>(inside) /
                    (static_cast<double>(kN) * static_cast<double>(kN));
  std::printf("lattice points inside: %lld of %lld -> pi ~ %.4f\n",
              static_cast<long long>(inside),
              static_cast<long long>(kN * kN), pi);

  // The migrated worker kept its progress counter across the move.
  auto done = client->ref(workers[0]).call("ChunksDone", Buffer{});
  if (done.ok()) {
    Reader r(*done);
    std::printf("worker 0 completed %lld chunks (state preserved across "
                "migration)\n",
                static_cast<long long>(r.i64()));
  }
  std::printf("client stale-binding retries: %llu (the cost of migration "
              "transparency)\n",
              static_cast<unsigned long long>(
                  client->resolver().stats().stale_retries));
  return (pi > 3.13 && pi < 3.15) ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
