// legion_objectd: the worker binary ProcessRuntime fork/execs, one process
// per Legion object.
//
// This is the paper's activation story made literal: the parent hands over
// an OPR (implementation spec + saved state + this executable's own path)
// and the system handles, both staged as files, plus a socket directory and
// a parent-assigned endpoint id. The worker activates the object in its own
// address space, binds `<dir>/ep-<id>.sock`, and serves method calls until
// stopped (SIGTERM from stop_child) or killed (the kill -9 fault path). A
// magistrate that has never linked against the object's code can therefore
// start, checkpoint, kill, and revive it — everything needed travels in the
// OPR.
//
// Exit codes (surfaced through the parent's ready-handshake timeout or the
// child stderr logs CI collects):
//   2 = bad command line        4 = activation (restore/instantiate) failed
//   3 = inherited-fd leak       5 = cannot read staged input files
//   (127/126 come from rt/spawn_child.cpp: exec / dup2 failure.)

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/active_object.hpp"
#include "core/implementation_registry.hpp"
#include "persist/opr.hpp"
#include "rt/process_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace {

using namespace legion;

// Every legion socket is CLOEXEC by construction (rt/socket_util.hpp) and
// spawn_child dup2s exactly one descriptor — the ready pipe — onto fd 3. So
// a freshly exec'ed worker must see nothing but stdio and that pipe; any
// other inherited fd is a leak into an address-space-disjoint object (a
// sibling's socket, the parent's vault file) and grounds to refuse to run.
bool OnlyExpectedFdsInherited(int ready_fd) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return true;  // no procfs: nothing to check
  const int scan_fd = ::dirfd(dir);
  bool clean = true;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    const int fd = std::atoi(entry->d_name);
    if (fd <= 2 || fd == ready_fd || fd == scan_fd) continue;
    std::fprintf(stderr, "legion_objectd: unexpected inherited fd %d\n", fd);
    clean = false;
  }
  ::closedir(dir);
  return clean;
}

bool ReadFile(const std::string& path, Buffer& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  out = Buffer{std::move(bytes)};
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_dir;
  std::string opr_path;
  std::string handles_path;
  std::uint64_t endpoint_id = 0;
  int ready_fd = -1;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--socket-dir") {
      socket_dir = value;
    } else if (flag == "--endpoint-id") {
      endpoint_id = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--opr") {
      opr_path = value;
    } else if (flag == "--handles") {
      handles_path = value;
    } else if (flag == "--ready-fd") {
      ready_fd = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "legion_objectd: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (socket_dir.empty() || opr_path.empty() || handles_path.empty() ||
      endpoint_id == 0) {
    std::fprintf(stderr,
                 "usage: legion_objectd --socket-dir D --endpoint-id N "
                 "--opr F --handles F [--ready-fd N]\n");
    return 2;
  }

  // Before opening anything of our own: the inherited-fd audit (must run
  // first, while the fd table is exactly what exec left us).
  if (!OnlyExpectedFdsInherited(ready_fd)) return 3;

  // The parent may die without stopping us; a write to the ready pipe (or a
  // reply socket) must then error, not kill the worker.
  ::signal(SIGPIPE, SIG_IGN);

  Buffer opr_bytes;
  Buffer handles_bytes;
  if (!ReadFile(opr_path, opr_bytes) || !ReadFile(handles_path, handles_bytes)) {
    std::fprintf(stderr, "legion_objectd: cannot read staged inputs\n");
    return 5;
  }
  Result<persist::Opr> opr = persist::Opr::from_bytes(opr_bytes);
  if (!opr.ok()) {
    std::fprintf(stderr, "legion_objectd: bad OPR: %s\n",
                 opr.status().message().c_str());
    return 4;
  }
  Reader hr(handles_bytes);
  const core::SystemHandles handles = core::SystemHandles::Deserialize(hr);
  if (!hr.ok()) {
    std::fprintf(stderr, "legion_objectd: bad system handles\n");
    return 4;
  }

  // Worker-mode runtime: the first endpoint created takes the id the parent
  // assigned, so the binding the parent published routes straight here.
  rt::ProcessOptions options;
  options.socket_dir = socket_dir;
  options.worker_endpoint_id = endpoint_id;
  rt::ProcessRuntime runtime(options);
  const HostId host = runtime.topology().add_host("worker", {});

  core::ImplementationRegistry registry;
  if (Status st = sim::RegisterSampleObjects(registry); !st.ok()) {
    std::fprintf(stderr, "legion_objectd: registry: %s\n",
                 st.message().c_str());
    return 4;
  }
  Result<std::vector<std::unique_ptr<core::ObjectImpl>>> impls =
      registry.instantiate(opr->implementation);
  if (!impls.ok()) {
    std::fprintf(stderr, "legion_objectd: unknown implementation %s: %s\n",
                 opr->implementation.c_str(),
                 impls.status().message().c_str());
    return 4;
  }

  core::ActiveObjectConfig config;
  config.label = "worker-object";
  core::ActiveObject shell(runtime, host, opr->loid, std::move(*impls),
                           handles, std::move(config));
  if (shell.endpoint().value != endpoint_id) {
    std::fprintf(stderr, "legion_objectd: endpoint id mismatch\n");
    return 4;
  }
  if (Status st = shell.restore(opr->state); !st.ok()) {
    std::fprintf(stderr, "legion_objectd: restore failed: %s\n",
                 st.message().c_str());
    return 4;
  }

  // The listener is bound (create_endpoint is synchronous), the state is
  // restored: tell the parent we are dialable. Only now — a byte written
  // any earlier would let spawn_object publish a binding to a worker that
  // might still fail activation.
  if (ready_fd >= 0) {
    const char byte = 'R';
    if (::write(ready_fd, &byte, 1) != 1) {
      return 5;  // parent gone before we came up: nothing to serve
    }
    ::close(ready_fd);
  }

  // Serve until a signal ends the process: SIGTERM (graceful stop — the
  // parent already captured state via kSaveState), SIGKILL (fault
  // injection), or parent teardown. The endpoint's service thread does the
  // work; this thread just keeps main alive.
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
}
